#include "exec/distributed.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/eigenvalue.hpp"
#include "core/tally.hpp"
#include "exec/load_balance.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/profiler.hpp"
#include "resil/fault.hpp"

namespace vmc::exec {

namespace {
// Per-block fission-bank sends use tags kBankTagBase + block id, well clear
// of the driver's other traffic and the collectives' reserved tags.
constexpr int kBankTagBase = 1000;
}  // namespace

DistributedResult run_distributed(comm::World& world,
                                  const geom::Geometry& geometry,
                                  const xs::Library& lib,
                                  const DistributedSettings& settings,
                                  std::vector<std::size_t> quotas) {
  if (static_cast<int>(quotas.size()) != world.size()) {
    throw std::invalid_argument("one quota per rank required");
  }
  const std::size_t quota_sum =
      std::accumulate(quotas.begin(), quotas.end(), std::size_t{0});
  if (quota_sum != settings.n_total) {
    throw std::invalid_argument("quotas must sum to n_total");
  }
  // Tally blocks: block b == rank b's original quota, fixed for the whole
  // run. Ownership migrates on death; boundaries never do.
  const std::size_t n_blocks = quotas.size();
  std::vector<std::size_t> offsets(n_blocks, 0);
  for (std::size_t b = 1; b < n_blocks; ++b) {
    offsets[b] = offsets[b - 1] + quotas[b - 1];
  }

  DistributedResult result;
  result.quotas = quotas;
  std::mutex result_mu;

  world.run([&](comm::Comm& c) {
    const int my_rank = c.rank();

    physics::Collision coll(lib, settings.physics);
    const core::HistoryTracker tracker(geometry, lib, coll, settings.tracker);

    // Every rank tracks block ownership identically: it is a deterministic
    // function of the dead set, which all survivors read at the same sync
    // point each generation.
    std::vector<int> owner(n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b) owner[b] = static_cast<int>(b);
    std::size_t blocks_replayed = 0;

    // Global initial source: every rank generates the identical full source
    // (deterministic from the seed — sampling is negligible next to
    // transport). Keeping it WHOLE on every rank is what makes adoption
    // free: a survivor replays an orphaned block straight from its own copy
    // of the banked source, no recovery traffic needed.
    core::Settings serial_like;
    serial_like.n_particles = settings.n_total;
    serial_like.seed = settings.seed;
    serial_like.source_lo = settings.source_lo;
    serial_like.source_hi = settings.source_hi;
    const core::Simulation source_maker(geometry, lib, serial_like);
    std::vector<particle::FissionSite> full_source =
        source_maker.initial_source();

    // Deliberately the SAME derivation as the serial driver's resample
    // stream (core/eigenvalue.cpp): rank 0 must resample exactly like the
    // serial run for decomposition-invariant results.
    // vmc-lint: allow(stream-overlap)
    rng::Stream resample_stream(settings.seed ^ 0xbadc0deULL);
    core::BatchStatistics k_stats;
    std::vector<double> k_history;
    double active_leak = 0.0;

    const int total_gens = settings.n_inactive + settings.n_active;
    for (int gen = 0; gen < total_gens; ++gen) {
      const bool active = gen >= settings.n_inactive;

      // --- fault window + per-generation health check --------------------
      // Deaths fire only here, before the barrier, so by the time the
      // barrier completes every survivor reads the same dead set — and no
      // rank can reach the NEXT generation's fault window until this
      // generation's collectives (which need every survivor) are done.
      if (resil::fault_fires("comm.rank_death",
                             static_cast<std::uint64_t>(my_rank))) {
        c.die();
        return;
      }
      c.barrier();
      const std::vector<int> dead = c.dead_ranks();
      if (!dead.empty() && dead.front() == 0) {
        throw comm::Error(
            "rank 0 (resampling root) died: unrecoverable — the root owns "
            "the resample stream state");
      }
      reassign_orphan_blocks(owner, quotas, dead, c.size());
      if (my_rank == 0) {
        for (std::size_t b = 0; b < n_blocks; ++b) {
          if (owner[b] != static_cast<int>(b)) ++blocks_replayed;
        }
      }

      // --- transport: every block I own, as one unit, in source order ----
      // Globally indexed particle ids: identical histories to the serial
      // driver's id scheme (gen * (n_total + 1) + global index) no matter
      // which rank transports the block.
      const std::uint64_t id_base =
          static_cast<std::uint64_t>(gen) * (settings.n_total + 1);
      std::vector<double> block_tallies(3 * n_blocks, 0.0);
      std::vector<std::vector<particle::FissionSite>> block_banks(n_blocks);
      obs::Tracer::Scope gen_span(obs::tracer(), "rank_generation",
                                  "distributed");
      const double gen_t0 = prof::now_seconds();
      std::size_t my_particles = 0;
      for (std::size_t b = 0; b < n_blocks; ++b) {
        if (owner[b] != my_rank) continue;
        core::TallyScores tally;
        core::EventCounts counts;
        auto& bank = block_banks[b];
        bank.reserve(quotas[b] * 3);
        for (std::size_t i = 0; i < quotas[b]; ++i) {
          const auto& site = full_source[offsets[b] + i];
          particle::Particle p = particle::Particle::born(
              settings.seed, id_base + offsets[b] + i, site.r, site.energy);
          tracker.track(p, tally, counts, bank);
        }
        my_particles += quotas[b];
        block_tallies[3 * b + 0] = tally.k_collision;
        block_tallies[3 * b + 1] = tally.absorption;
        block_tallies[3 * b + 2] = tally.leakage;
      }

      // Per-rank transport rate gauge: the raw ingredient of the Eq. 3 α
      // load-balance estimate — a scrape across ranks shows imbalance as a
      // spread in these gauges long before it shows in total wall time.
      {
        const double dt = prof::now_seconds() - gen_t0;
        const obs::Gauge g_rate = obs::metrics().gauge(
            "vmc_rank_rate_particles_per_second",
            {{"rank", std::to_string(my_rank)}},
            "Per-rank transport rate for the latest generation");
        g_rate.set(dt > 0.0 ? static_cast<double>(my_particles) / dt : 0.0);
      }

      // --- the per-batch communication pattern ---------------------------
      // 1. allreduce the block-structured tallies. Exactly one rank is
      //    nonzero in each block's slots (adding the others' zeros is
      //    exact), and the scalars are then summed in FIXED block order —
      //    the two properties that make recovery bit-identical.
      const std::vector<double> global = c.allreduce_sum(block_tallies);
      const double k_coll = core::ordered_sum_strided(global, 3, 0);
      const double leak = core::ordered_sum_strided(global, 3, 2);
      const double k_gen = k_coll / static_cast<double>(settings.n_total);
      k_history.push_back(k_gen);
      if (active) {
        k_stats.add(k_gen);
        active_leak += leak;
      }

      // 2. assemble the fission bank at the root in BLOCK order (== global
      //    particle order) via per-block tagged sends. recv_for keeps a
      //    stalled survivor from hanging the campaign.
      std::vector<particle::FissionSite> all_sites;
      if (my_rank == 0) {
        for (std::size_t b = 0; b < n_blocks; ++b) {
          if (owner[b] == 0) {
            all_sites.insert(all_sites.end(), block_banks[b].begin(),
                             block_banks[b].end());
          } else {
            const std::vector<particle::FissionSite> part =
                c.recv_for<particle::FissionSite>(
                    owner[b], kBankTagBase + static_cast<int>(b),
                    settings.recv_timeout);
            all_sites.insert(all_sites.end(), part.begin(), part.end());
          }
        }
      } else {
        for (std::size_t b = 0; b < n_blocks; ++b) {
          if (owner[b] == my_rank) {
            c.send(0, kBankTagBase + static_cast<int>(b), block_banks[b]);
          }
        }
      }

      // 3. root resamples to n_total, everyone receives the new FULL source.
      std::vector<particle::FissionSite> next_full;
      if (my_rank == 0) {
        next_full = core::resample_bank(all_sites, settings.n_total,
                                        resample_stream);
      }
      c.bcast(next_full, 0);
      full_source = std::move(next_full);
    }

    if (my_rank == 0) {
      static const obs::Counter c_replayed = obs::metrics().counter(
          "vmc_distributed_blocks_replayed_total", {},
          "Orphaned tally blocks replayed by surviving ranks");
      c_replayed.inc(blocks_replayed);
      std::lock_guard lk(result_mu);
      result.k_eff = k_stats.mean();
      result.k_std = k_stats.std_err();
      result.k_per_generation = k_history;
      result.leakage_fraction =
          active_leak / (static_cast<double>(settings.n_total) *
                         std::max(1, settings.n_active));
      result.dead_ranks = c.dead_ranks();
      result.blocks_replayed = blocks_replayed;
    }
  });

  return result;
}

}  // namespace vmc::exec
