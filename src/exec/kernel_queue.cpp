#include "exec/kernel_queue.hpp"

#include <stdexcept>

namespace vmc::exec {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::lookup: return "lookup";
    case EventKind::distance: return "distance";
    case EventKind::collision: return "collision";
  }
  return "?";
}

void KernelQueue::push(const KernelChunk& c) {
  if (c.kind != kind_)
    throw std::logic_error("KernelQueue: chunk kind does not match queue");
  chunks_.push_back(c);
  ++pushed_;
  if (chunks_.size() > high_water_) high_water_ = chunks_.size();
}

KernelChunk KernelQueue::pop() {
  if (chunks_.empty()) throw std::logic_error("KernelQueue: pop() on empty");
  KernelChunk c = chunks_.front();
  chunks_.pop_front();
  ++popped_;
  return c;
}

KernelQueueSet::KernelQueueSet()
    : queues_{KernelQueue(EventKind::lookup), KernelQueue(EventKind::distance),
              KernelQueue(EventKind::collision)} {}

bool KernelQueueSet::empty() const {
  for (const auto& q : queues_)
    if (!q.empty()) return false;
  return true;
}

std::size_t KernelQueueSet::size() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

std::optional<KernelChunk> KernelQueueSet::pop_fair() {
  for (int step = 0; step < kEventKinds; ++step) {
    int k = (cursor_ + step) % kEventKinds;
    if (!queues_[static_cast<std::size_t>(k)].empty()) {
      cursor_ = (k + 1) % kEventKinds;
      return queues_[static_cast<std::size_t>(k)].pop();
    }
  }
  return std::nullopt;
}

}  // namespace vmc::exec
