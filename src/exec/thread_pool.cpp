#include "exec/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/profiler.hpp"

namespace vmc::exec {

ThreadPool::ThreadPool(int n_threads) {
  const int n = std::max(1, n_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // Queue-wait histogram: time between enqueue and the worker picking the
  // task up. A fat tail here is the "pool starved / oversubscribed" signal
  // that raw per-stage timers cannot separate from slow kernels.
  static const obs::Histogram h_wait = obs::metrics().histogram(
      "vmc_thread_pool_queue_wait_seconds",
      {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0}, {},
      "Time submitted tasks spent waiting in the pool queue");
  const double t_enq = prof::now_seconds();
  std::packaged_task<void()> pt([t_enq, task = std::move(task)] {
    h_wait.observe(prof::now_seconds() - t_enq);
    obs::Tracer::Scope span(obs::tracer(), "pool_task", "exec");
    task();
  });
  std::future<void> f = pt.get_future();
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(pt));
  }
  cv_.notify_one();
  return f;
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t nw = workers_.size();
  const std::size_t chunk = (n + nw - 1) / nw;
  std::vector<std::future<void>> futures;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  // Join EVERY chunk before returning, even when one throws: the queued
  // tasks hold `fn` by reference, so an early exit would leave stragglers
  // calling through a dangling reference into the caller's dead stack slot.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
      // Not swallowed: the first chunk failure is rethrown below, after the
      // join. vmc-lint: allow(naked-catch-in-exec)
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace vmc::exec
