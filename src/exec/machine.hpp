// Device performance models — the substitution for the retired Xeon Phi
// hardware (DESIGN.md §2).
//
// The paper's cross-device results are ratios of throughput between a
// 16-core Xeon host and 61-core MIC coprocessors. We reproduce them with a
// two-part scheme:
//   1. the *work* is measured from real runs of our transport core
//      (core::EventCounts → WorkProfile: lookups, nuclide terms, collisions,
//      crossings per particle), and
//   2. a DeviceSpec supplies per-operation costs and parallel efficiency for
//      each machine, calibrated against the paper's published numbers
//      (Table I-III, Fig. 5: alpha = 0.61-0.62, 4,050 n/s host H.M. Large,
//      6,641 n/s MIC, banked-lookup ~10x, PCIe 1.1 GB/s bank payloads).
// CostModel turns (WorkProfile, DeviceSpec, N, threads) into seconds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/tally.hpp"

namespace vmc::exec {

/// Per-operation costs in nanoseconds on ONE hardware thread, plus the
/// machine's parallel shape.
struct DeviceSpec {
  std::string name;
  int hw_threads = 1;             // usable threads (32 host / 244 MIC)
  double thread_efficiency = 1.0; // sustained fraction of linear scaling
  /// Particles per thread needed to approach full efficiency: the
  /// load-imbalance ramp that makes small-N rates droop (Fig. 5's shape and
  /// the 1-MIC tail at 1,024 nodes). Efficiency multiplier is
  /// n / (n + ramp * threads).
  double ramp_particles_per_thread = 4.0;

  // Scalar (history-method) per-op costs.
  double ns_grid_search = 80.0;        // one unionized-grid binary search
  double ns_lookup_term = 25.0;        // one nuclide term, scalar
  double ns_collision_base = 120.0;    // collision bookkeeping + kinematics
  double ns_collision_term = 10.0;     // nuclide-sampling loop, per nuclide
  double ns_crossing = 250.0;          // boundary distance + relocate
  double ns_rng_scalar = 15.0;         // one call-based draw (+log)
  // Vector (event-method) per-op costs.
  double ns_lookup_term_banked = 6.0;  // one nuclide term, SIMD gathers
  double ns_rng_vector = 0.8;          // one block-filled draw
  double ns_log_vector = 0.6;          // one lane of vectorized log
  double ns_bank_particle = 40.0;      // banking one particle (write-bound)

  // Per-generation fixed cost (thread fork/join, tally reduction).
  double generation_overhead_s = 0.0;

  // Streaming memory bandwidth (the optimized Table I kernels are
  // bandwidth-bound) and the cost of one *naive* call-per-number distance
  // sample (posix rand_r + scalar log), per thread.
  double mem_bw_gbs = 30.0;
  double ns_naive_sample = 105.0;

  // Offload link (only meaningful for coprocessors).
  double pcie_bank_gbs = 0.0;   // effective rate for bank-sized payloads
  double pcie_bulk_gbs = 0.0;   // effective rate for large staging transfers
  double pcie_latency_s = 0.0;  // per-transfer setup

  /// JLSE host: 2x Intel E5-2687W, 16 cores / 32 threads @ 3.40 GHz.
  static DeviceSpec jlse_host();
  /// Intel Xeon Phi 7120a: 61 cores / 244 threads @ 1.238 GHz, 16 GB.
  static DeviceSpec mic_7120a();
  /// Stampede host: 2x E5-2680, 16 cores / 32 threads @ 2.6-2.7 GHz.
  static DeviceSpec stampede_host();
  /// Stampede SE10P MIC: 61 cores @ 1.1 GHz.
  static DeviceSpec mic_se10p();
};

/// Average work per particle, measured from a real run.
struct WorkProfile {
  double lookups_per_particle = 0.0;
  double terms_per_lookup = 0.0;
  double collisions_per_particle = 0.0;
  double crossings_per_particle = 0.0;

  /// Derive from accumulated counters.
  static WorkProfile from_counts(const core::EventCounts& c);
};

/// Converts work into simulated seconds on a device.
class CostModel {
 public:
  explicit CostModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Serial nanoseconds to transport one particle, history method.
  double history_ns_per_particle(const WorkProfile& w) const;

  /// Wall seconds for a generation of `n` particles with `threads` threads
  /// (0 = all hardware threads), history method.
  double generation_seconds(const WorkProfile& w, std::size_t n,
                            int threads = 0) const;

  /// Calculation rate (particles/second) for the history method.
  double calculation_rate(const WorkProfile& w, std::size_t n,
                          int threads = 0) const;

  /// Seconds to sweep a bank of `n` lookups with `terms` nuclides each,
  /// banked SIMD method (Algorithm 2's inner loop).
  double banked_lookup_seconds(std::size_t n, double terms,
                               int threads = 0) const;

  /// Seconds to sweep `n` lookups scalar (history-method micro-benchmark).
  double scalar_lookup_seconds(std::size_t n, double terms,
                               int threads = 0) const;

  /// Seconds to bank `n` particles.
  double bank_seconds(std::size_t n, int threads = 0) const;

  /// Seconds to move `bytes` across the PCIe link.
  double transfer_seconds(std::size_t bytes, bool bulk) const;

  /// Table I models: seconds for `n` naive call-per-number distance samples,
  /// and for a bandwidth-bound vector kernel moving `bytes`
  /// (`efficiency` > 1 models the intrinsics variant's higher sustained BW).
  double naive_sample_seconds(std::size_t n, int threads = 0) const;
  double bandwidth_kernel_seconds(std::size_t bytes,
                                  double efficiency = 1.0) const;

  /// Effective parallel speedup for `threads` threads (asymptotic, large N).
  double parallel_speedup(int threads) const;

  /// Speedup including the small-N load-imbalance ramp.
  double effective_speedup(std::size_t n, int threads) const;

 private:
  int resolve_threads(int threads) const {
    return threads <= 0 ? spec_.hw_threads : threads;
  }
  DeviceSpec spec_;
};

}  // namespace vmc::exec
