// Distributed eigenvalue driver: the REAL symmetric-mode execution — ranks
// (threads of the in-process comm::World, standing in for MPI processes)
// transport disjoint particle blocks, allreduce the tallies, and the root
// redistributes the fission bank between generations, exactly OpenMC's
// per-batch communication pattern.
//
// The decomposition is exact, not just statistically equivalent: particle
// ids are globally indexed and the bank is gathered in rank order, so the
// same seed produces bit-identical particle histories and fission banks for
// ANY rank count and ANY quota split; the tally scalars agree to
// floating-point summation-order precision (tested in
// tests/exec/test_distributed.cpp) — the property that makes Eq. 3's
// heterogeneous splits safe to use.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/comm.hpp"
#include "core/history.hpp"
#include "core/tally.hpp"
#include "geom/geometry.hpp"
#include "physics/collision.hpp"
#include "xsdata/library.hpp"

namespace vmc::exec {

struct DistributedSettings {
  std::size_t n_total = 10000;  // particles per generation, across all ranks
  int n_inactive = 2;
  int n_active = 3;
  std::uint64_t seed = 42;
  physics::PhysicsSettings physics = physics::PhysicsSettings::full();
  core::TrackerOptions tracker;
  geom::Position source_lo{-1, -1, -1};
  geom::Position source_hi{1, 1, 1};
};

struct DistributedResult {
  double k_eff = 0.0;
  double k_std = 0.0;
  std::vector<double> k_per_generation;  // collision estimator
  double leakage_fraction = 0.0;         // over active generations
  std::vector<std::size_t> quotas;       // particles per rank
};

/// Run the eigenvalue iteration across `world`'s ranks with the given
/// per-rank particle quotas (sum must equal settings.n_total; use
/// exec::uniform_counts or exec::per_rank_counts to build them). Every rank
/// returns the same result.
DistributedResult run_distributed(comm::World& world,
                                  const geom::Geometry& geometry,
                                  const xs::Library& lib,
                                  const DistributedSettings& settings,
                                  std::vector<std::size_t> quotas);

}  // namespace vmc::exec
