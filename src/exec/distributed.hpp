// Distributed eigenvalue driver: the REAL symmetric-mode execution — ranks
// (threads of the in-process comm::World, standing in for MPI processes)
// transport disjoint particle blocks, allreduce the tallies, and the root
// redistributes the fission bank between generations, exactly OpenMC's
// per-batch communication pattern.
//
// The decomposition is exact, not just statistically equivalent: particle
// ids are globally indexed and the bank is gathered in rank order, so the
// same seed produces bit-identical particle histories and fission banks for
// ANY rank count and ANY quota split; the tally scalars agree to
// floating-point summation-order precision (tested in
// tests/exec/test_distributed.cpp) — the property that makes Eq. 3's
// heterogeneous splits safe to use.
//
// Resilience (rank-failure recovery): the per-generation tallies are
// reduced BLOCK-structured — one tally block per ORIGINAL rank quota, fixed
// for the whole run, each occupying its own slots of the allreduce vector.
// When the `comm.rank_death` fault point kills a rank at a generation
// start, the survivors detect it at the health-check barrier, re-home the
// dead rank's blocks whole onto the least-loaded survivor
// (load_balance.hpp, reassign_orphan_blocks — the alpha=1 instance of
// Eq. 3), and replay the orphaned particles from the banked source every
// rank already holds. Because a block is always transported as one unit in
// source order, its partial sums are identical no matter which rank runs
// it, and because blocks are summed in fixed block order (each allreduce
// slot has exactly one nonzero contributor; adding zeros is exact), k_eff
// and k_per_generation are BIT-IDENTICAL to the fault-free run. The fission
// bank is assembled at the root in block order via per-block tagged sends
// with a recv timeout, so a stalled survivor surfaces as comm::Error rather
// than a hang. Death of rank 0 (the resampling root) is unrecoverable and
// throws. Chaos-tested in tests/resil/test_chaos_distributed.cpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "comm/comm.hpp"
#include "core/history.hpp"
#include "core/tally.hpp"
#include "geom/geometry.hpp"
#include "physics/collision.hpp"
#include "xsdata/library.hpp"

namespace vmc::exec {

struct DistributedSettings {
  std::size_t n_total = 10000;  // particles per generation, across all ranks
  int n_inactive = 2;
  int n_active = 3;
  std::uint64_t seed = 42;
  physics::PhysicsSettings physics = physics::PhysicsSettings::full();
  core::TrackerOptions tracker;
  geom::Position source_lo{-1, -1, -1};
  geom::Position source_hi{1, 1, 1};
  /// Deadline for the root's per-block fission-bank receives; a survivor
  /// that stalls past this throws comm::Error instead of hanging the run.
  std::chrono::milliseconds recv_timeout{60000};
};

struct DistributedResult {
  double k_eff = 0.0;
  double k_std = 0.0;
  std::vector<double> k_per_generation;  // collision estimator
  double leakage_fraction = 0.0;         // over active generations
  std::vector<std::size_t> quotas;       // particles per rank (= tally blocks)
  // Resilience outcome:
  std::vector<int> dead_ranks;       // ranks that died during the run
  std::size_t blocks_replayed = 0;   // block-generations run by an adopter
};

/// Run the eigenvalue iteration across `world`'s ranks with the given
/// per-rank particle quotas (sum must equal settings.n_total; use
/// exec::uniform_counts or exec::per_rank_counts to build them). Every rank
/// returns the same result.
DistributedResult run_distributed(comm::World& world,
                                  const geom::Geometry& geometry,
                                  const xs::Library& lib,
                                  const DistributedSettings& settings,
                                  std::vector<std::size_t> quotas);

}  // namespace vmc::exec
