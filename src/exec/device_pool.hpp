// DevicePool: the per-run roster of modeled devices behind the multi-device
// offload executor — each entry couples a calibrated CostModel
// (machine.hpp) with its own HealthMonitor fault domain plus the accounting
// the run report and metrics need.
//
// Scheduling is deterministic by construction. The paper's symmetric-mode
// split hands the MIC a fixed fraction alpha = 0.62 of each generation; with
// k heterogeneous devices that generalizes to per-device shares
//
//     alpha_d = r_d / sum_j r_j,
//
// where r_d is the device's modeled banked-lookup rate, and assign() turns
// those shares into contiguous chunk blocks by largest remainder — a pure
// function of (n_chunks, device specs), independent of timing, threads, or
// fault outcomes. Rebalancing after faults happens in later passes (the
// executor's reschedule/degrade phases), never by mutating this map.
#pragma once

#include <cstddef>
#include <vector>

#include "exec/health.hpp"
#include "exec/machine.hpp"

namespace vmc::exec {

/// One device's per-run state: the cost model, its breaker, and the outcome
/// tallies the executor accumulates while driving it.
struct DeviceState {
  CostModel model;
  HealthMonitor health;
  int chunks_ok = 0;       // chunks this device completed (either phase)
  int chunks_failed = 0;   // chunks whose retries exhausted on this device
  int chunks_skipped = 0;  // chunks denied by the breaker
  int retries = 0;         // transient faults absorbed by retry_with_backoff
  int steals_in = 0;       // phase-2 chunks rescheduled TO this device
  int streams = 1;         // stream depth S the last pipelined run used
  int inflight_high_water = 0;  // most chunks in flight at once, last run
  double model_transfer_s = 0.0;  // accumulated cost-model projections
  double model_compute_s = 0.0;

  DeviceState(CostModel m, const BreakerPolicy& p)
      : model(std::move(m)), health(p) {}
};

class DevicePool {
 public:
  /// Throws std::invalid_argument on an empty device list or an invalid
  /// breaker policy (BreakerPolicy::validate).
  DevicePool(const std::vector<CostModel>& devices,
             const BreakerPolicy& breaker);

  std::size_t size() const { return devices_.size(); }
  DeviceState& at(std::size_t d) { return devices_[d]; }
  const DeviceState& at(std::size_t d) const { return devices_[d]; }

  /// Generalized symmetric-split shares alpha_d (sum to 1): each device's
  /// modeled banked-lookup rate over the pool total.
  const std::vector<double>& shares() const { return shares_; }

  /// chunk index -> device index for `n_chunks` chunks: contiguous blocks
  /// sized by largest-remainder apportionment of the shares, in device
  /// order. Deterministic; ignores health (phase 1 is the static map).
  std::vector<std::size_t> assign(std::size_t n_chunks) const;

  /// Devices currently able to accept rescheduled work: breaker neither
  /// tripped nor holding a half-open probe.
  std::vector<std::size_t> accepting_devices() const;

 private:
  std::vector<DeviceState> devices_;
  std::vector<double> shares_;
};

}  // namespace vmc::exec
