#include "exec/health.hpp"

#include <stdexcept>
#include <string>

namespace vmc::exec {

std::string_view to_string(HealthState s) {
  switch (s) {
    case HealthState::healthy:   return "healthy";
    case HealthState::suspect:   return "suspect";
    case HealthState::tripped:   return "tripped";
    case HealthState::half_open: return "half_open";
  }
  return "unknown";
}

void BreakerPolicy::validate() const {
  if (suspect_after < 1) {
    throw std::invalid_argument(
        "BreakerPolicy.suspect_after must be >= 1 (got " +
        std::to_string(suspect_after) + ")");
  }
  if (trip_after < 1) {
    throw std::invalid_argument("BreakerPolicy.trip_after must be >= 1 (got " +
                                std::to_string(trip_after) + ")");
  }
  if (cooldown_denials < 1) {
    throw std::invalid_argument(
        "BreakerPolicy.cooldown_denials must be >= 1 (got " +
        std::to_string(cooldown_denials) + ")");
  }
}

bool HealthMonitor::admit() {
  switch (state_) {
    case HealthState::healthy:
    case HealthState::suspect:
      return true;
    case HealthState::half_open:
      if (probe_armed_) {
        probe_armed_ = false;
        ++probes_;
        return true;
      }
      // Probe dispatched but its outcome not yet recorded: hold further
      // work without advancing the cooldown.
      ++denials_total_;
      return false;
    case HealthState::tripped:
      ++denials_total_;
      if (++cooldown_ >= policy_.cooldown_denials) {
        state_ = HealthState::half_open;
        probe_armed_ = true;
        cooldown_ = 0;
      }
      return false;
  }
  return false;
}

void HealthMonitor::record_chunk(int faults, bool succeeded) {
  const bool was_probe = state_ == HealthState::half_open;
  if (faults > 0 || !succeeded) ++faulted_chunks_;

  if (succeeded && faults == 0) {
    // Clean pass: close the breaker from any state.
    fault_streak_ = 0;
    fail_streak_ = 0;
    state_ = HealthState::healthy;
    return;
  }

  if (succeeded) {
    // Needed retries but delivered: the device works, shakily.
    ++fault_streak_;
    fail_streak_ = 0;
    if (was_probe || state_ == HealthState::tripped) {
      state_ = HealthState::suspect;
    } else if (fault_streak_ >= policy_.suspect_after) {
      state_ = HealthState::suspect;
    }
    return;
  }

  // Retries exhausted: a hard chunk failure.
  ++failed_chunks_;
  ++fault_streak_;
  ++fail_streak_;
  if (was_probe || fail_streak_ >= policy_.trip_after) {
    // A failed probe re-trips immediately; otherwise trip on the streak.
    state_ = HealthState::tripped;
    ++trips_;
    cooldown_ = 0;
    probe_armed_ = false;
    return;
  }
  if (fault_streak_ >= policy_.suspect_after) state_ = HealthState::suspect;
}

}  // namespace vmc::exec
