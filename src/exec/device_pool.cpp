#include "exec/device_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmc::exec {

namespace {

// Reference workload for the rate weights: large enough that every device
// sits on the flat part of its efficiency ramp, so shares reflect asymptotic
// throughput (the regime the paper's alpha was fit in).
constexpr std::size_t kRefLookups = 1 << 20;
constexpr double kRefTerms = 100.0;

}  // namespace

DevicePool::DevicePool(const std::vector<CostModel>& devices,
                       const BreakerPolicy& breaker) {
  if (devices.empty()) {
    throw std::invalid_argument("DevicePool requires at least one device");
  }
  breaker.validate();
  devices_.reserve(devices.size());
  for (const CostModel& m : devices) devices_.emplace_back(m, breaker);

  double total_rate = 0.0;
  std::vector<double> rates;
  rates.reserve(devices.size());
  for (const CostModel& m : devices) {
    const double rate = static_cast<double>(kRefLookups) /
                        m.banked_lookup_seconds(kRefLookups, kRefTerms);
    rates.push_back(rate);
    total_rate += rate;
  }
  shares_.reserve(rates.size());
  for (const double r : rates) shares_.push_back(r / total_rate);
}

std::vector<std::size_t> DevicePool::assign(std::size_t n_chunks) const {
  // Largest-remainder apportionment: floor each quota, then hand the
  // leftover chunks to the largest fractional parts (ties to the lower
  // device index — fully deterministic).
  const std::size_t k = devices_.size();
  std::vector<std::size_t> quota(k);
  std::vector<std::pair<double, std::size_t>> frac(k);
  std::size_t assigned = 0;
  for (std::size_t d = 0; d < k; ++d) {
    const double exact = shares_[d] * static_cast<double>(n_chunks);
    quota[d] = static_cast<std::size_t>(exact);
    frac[d] = {exact - static_cast<double>(quota[d]), d};
    assigned += quota[d];
  }
  std::stable_sort(frac.begin(), frac.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < n_chunks; ++i, ++assigned) {
    ++quota[frac[i % k].second];
  }

  std::vector<std::size_t> map;
  map.reserve(n_chunks);
  for (std::size_t d = 0; d < k; ++d) {
    map.insert(map.end(), quota[d], d);
  }
  return map;
}

std::vector<std::size_t> DevicePool::accepting_devices() const {
  std::vector<std::size_t> out;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (devices_[d].health.accepting()) out.push_back(d);
  }
  return out;
}

}  // namespace vmc::exec
