// Work-queue thread pool.
//
// Used by the offload runtime to overlap "device" compute with asynchronous
// transfer (the paper stresses "the importance of overlapping computation
// with asynchronous data transfer"), and by benchmarks for parallel sweeps.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace vmc::exec {

class ThreadPool {
 public:
  explicit ThreadPool(int n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Block until every queued task has finished.
  void wait_idle();

  /// Static-chunked parallel for over [0, n): fn(begin, end) per chunk.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool stop_ = false;
};

}  // namespace vmc::exec
