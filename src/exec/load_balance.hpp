// Static load balancing between heterogeneous devices (Section III-B3).
//
// With p_mic MIC ranks and p_cpu CPU ranks sharing n_total particles, the
// paper solves p_mic*n_mic + p_cpu*n_cpu = n_total with n_cpu/n_mic = alpha
// (Eq. 3):
//   n_mic = n_total / (p_mic + p_cpu * alpha),   n_cpu = alpha * n_mic.
// alpha = CPU rate / MIC rate (Eq. 2), ~0.62 on JLSE for H.M. Large.
// The runtime estimator below implements the paper's Section V future-work
// feature: set alpha = 1/p on the first batch, then update from measured
// per-batch calculation rates.
#pragma once

#include <cstddef>
#include <vector>

namespace vmc::exec {

struct StaticSplit {
  std::size_t n_mic = 0;  // particles per MIC rank
  std::size_t n_cpu = 0;  // particles per CPU rank
};

/// Eq. 3 with integer rounding that preserves the total exactly: MIC ranks
/// get round(n_mic); the CPU ranks split the remainder evenly (first ranks
/// take the odd particles).
StaticSplit balance_eq3(std::size_t n_total, int p_mic, int p_cpu,
                        double alpha);

/// Expand a split into per-rank counts (MIC ranks first), summing exactly to
/// n_total.
std::vector<std::size_t> per_rank_counts(std::size_t n_total, int p_mic,
                                         int p_cpu, double alpha);

/// Uniform (unbalanced, OpenMC-default) per-rank counts.
std::vector<std::size_t> uniform_counts(std::size_t n_total, int ranks);

/// Failure recovery: re-home every block whose owner appears in
/// `dead_ranks` onto the least-loaded live rank (load = particles currently
/// owned; ties break to the lowest rank id). This is the Eq. 3 split with
/// alpha = 1 applied at block granularity: blocks move WHOLE, never
/// subdivided, because subdividing would change the floating-point
/// summation order inside the block and break bit-identical recovery.
/// Orphans are processed in ascending block order so every rank computes
/// the identical assignment from the identical dead set. Returns the number
/// of blocks that moved. Throws if no live rank remains.
std::size_t reassign_orphan_blocks(std::vector<int>& owner,
                                   const std::vector<std::size_t>& block_sizes,
                                   const std::vector<int>& dead_ranks,
                                   int n_ranks);

/// Runtime alpha estimator: observes per-batch (cpu_rate, mic_rate) pairs
/// and exposes a smoothed alpha for the next batch.
class AlphaEstimator {
 public:
  /// `initial_alpha` of 1.0 reproduces the paper's 1/p uniform first batch.
  explicit AlphaEstimator(double initial_alpha = 1.0)
      : alpha_(initial_alpha) {}

  void observe(double cpu_rate, double mic_rate) {
    if (cpu_rate <= 0.0 || mic_rate <= 0.0) return;
    const double measured = cpu_rate / mic_rate;
    // The paper notes rates vary little between batches, so a light
    // exponential smoothing converges in 1-2 batches without chatter.
    alpha_ = n_obs_ == 0 ? measured : 0.5 * alpha_ + 0.5 * measured;
    ++n_obs_;
  }

  double alpha() const { return alpha_; }
  int observations() const { return n_obs_; }

 private:
  double alpha_;
  int n_obs_ = 0;
};

}  // namespace vmc::exec
