#include "exec/offload.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/tally.hpp"
#include "geom/geometry.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/profiler.hpp"
#include "resil/fault.hpp"
#include "rng/stream.hpp"
#include "exec/stream.hpp"
#include "exec/thread_pool.hpp"
#include "xsdata/lookup.hpp"

namespace vmc::exec {

namespace {

// Shared offload-resilience series; bumped by both the single-iteration and
// the pipelined paths so one exposition covers either driver. The pipelined
// path additionally exports per-device families (label device="<index>").
const obs::Counter& offload_retries_counter() {
  static const obs::Counter c = obs::metrics().counter(
      "vmc_offload_retries_total", {},
      "Offload transfer/compute faults that were retried successfully");
  return c;
}

const obs::Counter& offload_degraded_counter() {
  static const obs::Counter c = obs::metrics().counter(
      "vmc_offload_degraded_stages_total", {},
      "Offload stages that fell back to the host-floor sweep");
  return c;
}

const obs::Counter& offload_rescheduled_counter() {
  static const obs::Counter c = obs::metrics().counter(
      "vmc_offload_rescheduled_stages_total", {},
      "Offload stages rescheduled onto a healthy peer device");
  return c;
}

const obs::Counter& offload_bytes_counter() {
  static const obs::Counter c = obs::metrics().counter(
      "vmc_offload_transfer_bytes_total", {},
      "Bytes shipped over the modeled PCIe link");
  return c;
}

obs::Labels device_label(std::size_t d) {
  return {{"device", std::to_string(d)}};
}

// Has every breaker in the pool landed in `tripped`? (half_open does NOT
// count: a half-open breaker is owed its probe chunk, so the normal pipeline
// must run.) Used by the all-dead short-circuit.
bool all_tripped(const DevicePool& pool) {
  for (std::size_t d = 0; d < pool.size(); ++d) {
    if (pool.at(d).health.state() != HealthState::tripped) return false;
  }
  return pool.size() > 0;
}

}  // namespace

std::size_t offload_record_bytes() {
  return particle::SoABank::bytes_per_particle() +
         sizeof(geom::Geometry::State) + sizeof(std::uint64_t);
}

OffloadRuntime::OffloadRuntime(const xs::Library& lib, CostModel host,
                               std::vector<CostModel> devices,
                               BreakerPolicy breaker)
    : lib_(lib),
      host_(std::move(host)),
      devices_(std::move(devices)),
      breaker_(breaker) {
  if (devices_.empty()) {
    throw std::invalid_argument("OffloadRuntime requires at least one device");
  }
  breaker_.validate();
}

OffloadRuntime::IterationReport OffloadRuntime::run_iteration(
    int material, std::size_t n, std::uint64_t seed) const {
  IterationReport rep;
  const auto& mat = lib_.material(material);
  const double terms = static_cast<double>(mat.size());
  const CostModel& device = devices_.front();

  obs::Tracer& tr = obs::tracer();
  const bool tracing = tr.enabled();
  if (tracing) {
    tr.set_process_name(obs::Tracer::kHostPid, "host (measured)");
    tr.set_process_name(obs::Tracer::kDevicePid,
                        device.spec().name + " (cost model)");
  }

  // --- bank particles (real, timed) ---------------------------------------
  rng::Stream rs(seed);
  particle::SoABank bank(n);
  if (tracing) tr.begin("bank_particles", "offload");
  const double t0 = prof::now_seconds();
  for (std::size_t i = 0; i < n; ++i) {
    // Log-uniform energies: what the bank looks like mid-simulation.
    const double e = xs::kEnergyMin *
                     std::pow(xs::kEnergyMax / xs::kEnergyMin, rs.next());
    bank.push(geom::Position{rs.next(), rs.next(), rs.next()},
              geom::Direction{0, 0, 1}, e, 1.0, i, material);
  }
  rep.wall_bank_s = prof::now_seconds() - t0;
  if (tracing) tr.end();

  // --- banked SIMD sweep (real, timed; the "device" leg) -------------------
  // Fault point offload.compute: a transient device failure is retried with
  // backoff; a persistent one degrades this iteration to the scalar host
  // sweep — same physics, host throughput.
  std::vector<xs::XsSet> out(n);
  if (tracing) tr.begin("banked_lookup_sweep", "offload");
  const double t1 = prof::now_seconds();
  const double sweep_ts = tracing ? tr.now_s() : 0.0;
  try {
    rep.retries += resil::retry_with_backoff(retry_, [&] {
      if (resil::fault_fires("offload.compute", 0)) {
        throw resil::FaultError(
            "injected offload.compute fault (banked lookup sweep)");
      }
      xs::macro_xs_banked(lib_, material, bank.energy, out, lookup_);
    });
  } catch (const resil::TransientError&) {
    rep.degraded = true;
    xs::macro_xs_banked_scalar(lib_, material, bank.energy, out, lookup_);
  }
  rep.wall_banked_lookup_s = prof::now_seconds() - t1;
  if (tracing) tr.end();

  // --- scalar control sweep (real, timed) ----------------------------------
  const double t2 = prof::now_seconds();
  xs::macro_xs_banked_scalar(lib_, material, bank.energy, out, lookup_);
  rep.wall_scalar_lookup_s = prof::now_seconds() - t2;

  // --- Sigma_t-only sweeps (what Algorithm 1 / Fig. 2 actually compute) ----
  std::vector<double> totals(n);
  const double t3 = prof::now_seconds();
  try {
    rep.retries += resil::retry_with_backoff(retry_, [&] {
      if (resil::fault_fires("offload.compute", 1)) {
        throw resil::FaultError(
            "injected offload.compute fault (banked total sweep)");
      }
      xs::macro_total_banked(lib_, material, bank.energy, totals, lookup_);
    });
  } catch (const resil::TransientError&) {
    rep.degraded = true;
    for (std::size_t i = 0; i < n; ++i) {
      totals[i] =
          xs::macro_total_history(lib_, material, bank.energy[i], lookup_);
    }
  }
  rep.wall_banked_total_s = prof::now_seconds() - t3;
  const double t4 = prof::now_seconds();
  for (std::size_t i = 0; i < n; ++i) {
    totals[i] =
          xs::macro_total_history(lib_, material, bank.energy[i], lookup_);
  }
  rep.wall_scalar_total_s = prof::now_seconds() - t4;

  // --- byte counts (real) ---------------------------------------------------
  rep.bank_bytes = n * offload_record_bytes();
  rep.grid_bytes =
      lib_.union_bytes() + lib_.pointwise_bytes() + lib_.hash_bytes();

  // --- paper-hardware projections -------------------------------------------
  rep.model_bank_host_s = host_.bank_seconds(n);
  rep.model_bank_device_s = device.bank_seconds(n);
  rep.model_transfer_s = device.transfer_seconds(rep.bank_bytes, false);
  rep.model_grid_transfer_s = device.transfer_seconds(rep.grid_bytes, true);
  rep.model_compute_device_s = device.banked_lookup_seconds(n, terms);
  rep.model_compute_host_s = host_.scalar_lookup_seconds(n, terms);

  // Synthetic device track: the cost-model's projected transfer + compute
  // legs, anchored at the measured banked sweep so Perfetto shows the
  // modeled MIC timeline directly under the host's measured one.
  if (tracing) {
    obs::JsonWriter args;
    args.begin_object()
        .member("bank_bytes", static_cast<std::uint64_t>(rep.bank_bytes))
        .member("device", device.spec().name)
        .end_object();
    tr.inject_span(obs::Tracer::kDevicePid, 1, "model:pcie_transfer",
                   "offload-model", sweep_ts, rep.model_transfer_s,
                   args.str());
    tr.inject_span(obs::Tracer::kDevicePid, 2, "model:banked_sweep",
                   "offload-model", sweep_ts + rep.model_transfer_s,
                   rep.model_compute_device_s);
    tr.set_thread_name(obs::Tracer::kDevicePid, 1, "pcie (modeled)");
    tr.set_thread_name(obs::Tracer::kDevicePid, 2, "device sweep (modeled)");
  }

  offload_retries_counter().inc(static_cast<std::uint64_t>(rep.retries));
  if (rep.degraded) offload_degraded_counter().inc();
  offload_bytes_counter().inc(rep.bank_bytes);
  return rep;
}

OffloadRuntime::RatioPoint OffloadRuntime::ratios(const WorkProfile& w,
                                                  std::size_t n) const {
  RatioPoint p;
  p.n = n;
  p.generation_s = host_.generation_seconds(w, n);
  const std::size_t lookups =
      static_cast<std::size_t>(w.lookups_per_particle * static_cast<double>(n));
  const double terms = w.terms_per_lookup;
  const CostModel& device = devices_.front();

  const double bank_cpu = host_.bank_seconds(n);
  const double transfer =
      device.transfer_seconds(n * offload_record_bytes(), false);
  // A device sweep pays the device's launch overhead once per iteration.
  const double xs_mic = device.banked_lookup_seconds(lookups, terms) +
                        device.spec().generation_overhead_s * 0.1;
  const double xs_cpu = host_.scalar_lookup_seconds(lookups, terms);

  p.bank_cpu = bank_cpu / p.generation_s;
  p.offload = transfer / p.generation_s;
  p.xs_mic = xs_mic / p.generation_s;
  p.xs_cpu = xs_cpu / p.generation_s;
  return p;
}

OffloadRuntime::RatioPoint OffloadRuntime::pool_ratios(const WorkProfile& w,
                                                       std::size_t n) const {
  RatioPoint p;
  p.n = n;
  p.generation_s = host_.generation_seconds(w, n);
  const std::size_t lookups =
      static_cast<std::size_t>(w.lookups_per_particle * static_cast<double>(n));
  const double terms = w.terms_per_lookup;

  const DevicePool pool(devices_, breaker_);
  // The bank splits by the generalized alpha shares. Transfers serialize —
  // all modeled links hang off one host PCIe complex — while the device
  // sweeps run concurrently, so the compute leg is the slowest share.
  double transfer = 0.0;
  double xs_pool = 0.0;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    const double share = pool.shares()[d];
    const auto n_d = static_cast<std::size_t>(share * static_cast<double>(n));
    const auto lookups_d =
        static_cast<std::size_t>(share * static_cast<double>(lookups));
    transfer +=
        devices_[d].transfer_seconds(n_d * offload_record_bytes(), false);
    xs_pool = std::max(
        xs_pool, devices_[d].banked_lookup_seconds(lookups_d, terms) +
                     devices_[d].spec().generation_overhead_s * 0.1);
  }

  p.bank_cpu = host_.bank_seconds(n) / p.generation_s;
  p.offload = transfer / p.generation_s;
  p.xs_mic = xs_pool / p.generation_s;
  p.xs_cpu = host_.scalar_lookup_seconds(lookups, terms) / p.generation_s;
  return p;
}

OffloadRuntime::PipelineRun OffloadRuntime::run_pipelined(
    int material, std::span<const double> energies, int n_banks) const {
  if (n_banks <= 0 || energies.empty()) return {};
  const std::size_t n = energies.size();
  const std::size_t per =
      (n + static_cast<std::size_t>(n_banks) - 1) /
      static_cast<std::size_t>(n_banks);
  KernelQueueSet queues;
  std::size_t ordinal = 0;
  for (std::size_t b = 0; b < n; b += per) {
    queues.push(KernelChunk{EventKind::lookup, material, b, std::min(n, b + per),
                            ordinal++});
  }
  return pipeline_queue_set(energies, queues);
}

OffloadRuntime::PipelineRun OffloadRuntime::run_pipelined_queues(
    const particle::SoABank& bank, std::span<const core::MaterialRun> runs,
    int n_banks) const {
  if (n_banks <= 0 || bank.empty()) return {};
  const std::size_t n = bank.size();
  // Split the compacted material runs into ~n_banks pipeline stages; a run
  // never spans two stages (each stage's device sweep is one homogeneous
  // material), so short runs cost one stage each.
  const std::size_t per = std::max<std::size_t>(
      1, (n + static_cast<std::size_t>(n_banks) - 1) /
             static_cast<std::size_t>(n_banks));
  KernelQueueSet queues;
  std::size_t ordinal = 0;
  for (const core::MaterialRun& r : runs) {
    for (std::size_t b = r.begin; b < r.end; b += per) {
      queues.push(KernelChunk{EventKind::lookup, r.material, b,
                              std::min(r.end, b + per), ordinal++});
    }
  }
  if (queues.empty()) return {};
  return pipeline_queue_set(std::span<const double>(bank.energy), queues);
}

OffloadRuntime::PipelineRun OffloadRuntime::run_pipelined_queues(
    const particle::SoABank& bank, const core::EventQueues& eq,
    int n_banks) const {
  if (n_banks <= 0 || bank.empty()) return {};
  const std::size_t n = bank.size();
  const std::size_t per = std::max<std::size_t>(
      1, (n + static_cast<std::size_t>(n_banks) - 1) /
             static_cast<std::size_t>(n_banks));

  // The all-dead short-circuit (persistent scheduler only — fresh per-run
  // pools always start healthy): when every breaker is tripped at entry,
  // skip the kernel-queue feed and the per-chunk device staging entirely and
  // sweep the same chunk split on the host floor. Each short-circuited run
  // still charges one denial per device so the tripped -> half_open cooldown
  // keeps advancing and a later run dispatches the recovery probe.
  if (persistent_ && persistent_pool_ && all_tripped(*persistent_pool_)) {
    std::vector<Chunk> chunks;
    eq.hand_off_runs(per, [&](int m, std::size_t b, std::size_t e) {
      chunks.push_back(Chunk{m, b, e});
    });
    if (chunks.empty()) return {};
    for (std::size_t d = 0; d < persistent_pool_->size(); ++d) {
      persistent_pool_->at(d).health.admit();
    }
    return host_floor_all(std::span<const double>(bank.energy), chunks,
                          *persistent_pool_);
  }

  KernelQueueSet queues;
  std::size_t ordinal = 0;
  eq.hand_off_runs(per, [&](int m, std::size_t b, std::size_t e) {
    queues.push(KernelChunk{EventKind::lookup, m, b, e, ordinal++});
  });
  if (queues.empty()) return {};
  return pipeline_queue_set(std::span<const double>(bank.energy), queues);
}

OffloadRuntime::PipelineRun OffloadRuntime::pipeline_queue_set(
    std::span<const double> energies, KernelQueueSet& queues) const {
  static const obs::Histogram h_occ = obs::metrics().histogram(
      "vmc_offload_kernel_queue_occupancy",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}, {},
      "Kernel-queue depth high-water per event kind at dispatch");
  const std::size_t n_chunks = queues.size();
  std::vector<Chunk> chunks(n_chunks);
  // Fair drain across the event kinds; the ordinal assigned at push time
  // pins each chunk's global reduction slot, so the rotation can never
  // perturb the checksum order.
  while (auto c = queues.pop_fair()) {
    if (c->ordinal >= n_chunks) {
      throw std::logic_error("pipeline_queue_set: ordinal out of range");
    }
    chunks[c->ordinal] = Chunk{c->material, c->begin, c->end};
  }
  for (int k = 0; k < kEventKinds; ++k) {
    const KernelQueue& q = queues.queue(static_cast<EventKind>(k));
    if (q.pushed() > 0) h_occ.observe(static_cast<double>(q.high_water()));
  }
  return pipeline_chunks(energies, chunks);
}

OffloadRuntime::PipelineRun OffloadRuntime::pipeline_chunks(
    std::span<const double> energies, std::span<const Chunk> chunks) const {
  PipelineRun run;
  const std::size_t n_chunks = chunks.size();
  std::unique_ptr<DevicePool> fresh;
  DevicePool& pool = acquire_pool(fresh);
  const std::size_t k = pool.size();
  const int S = stream_depth_;
  run.stream_depth = S;

  // Persistent pools carry their counters across runs; every report and
  // metric below must cover THIS run alone, so snapshot the lifetime
  // counters at entry and publish deltas.
  struct Snap {
    int ok = 0, failed = 0, skipped = 0, retries = 0, steals = 0;
    int trips = 0, probes = 0;
    double xfer_s = 0.0, comp_s = 0.0;
  };
  std::vector<Snap> snap(k);
  for (std::size_t d = 0; d < k; ++d) {
    const DeviceState& dev = pool.at(d);
    snap[d] = Snap{dev.chunks_ok,       dev.chunks_failed,
                   dev.chunks_skipped,  dev.retries,
                   dev.steals_in,       dev.health.trips(),
                   dev.health.probes(), dev.model_transfer_s,
                   dev.model_compute_s};
  }

  // A persistent pool can enter with every breaker open (a fresh pool never
  // does). Short-circuit to the host floor before building streams or
  // staging anything, charging one denial per device so the cooldown toward
  // the half-open probe still advances.
  if (all_tripped(pool)) {
    for (std::size_t d = 0; d < k; ++d) pool.at(d).health.admit();
    return host_floor_all(energies, chunks, pool);
  }

  // Global per-chunk result slots. Each chunk is written by exactly one
  // executor (its phase-1 owner, a phase-2 peer, or the phase-3 host floor);
  // phases are separated by joins, and within a phase devices own disjoint
  // chunk lists — so the slots need no synchronization.
  std::vector<simd::aligned_vector<double>> totals(n_chunks);
  std::vector<unsigned char> done(n_chunks, 0);

  obs::Tracer& tr = obs::tracer();
  const bool tracing = tr.enabled();
  const double trace_t0 = tracing ? tr.now_s() : 0.0;
  if (tracing) {
    tr.set_process_name(obs::Tracer::kHostPid, "host (measured)");
    for (std::size_t d = 0; d < k; ++d) {
      tr.set_process_name(
          obs::Tracer::kDevicePid + static_cast<int>(d),
          "device " + std::to_string(d) + ": " + pool.at(d).model.spec().name +
              " (cost model)");
    }
  }

  // One faultable stage: arm the point, run the body under retry/backoff.
  // `faulted` counts injected-fault attempts observed (all absorbed when
  // ok; one initial attempt + max_retries when the stage hard-fails).
  struct StageOutcome {
    int faulted = 0;
    bool ok = true;
  };
  const auto run_stage = [this](const char* point, std::uint64_t key,
                                const auto& body) {
    StageOutcome out;
    try {
      out.faulted = resil::retry_with_backoff(retry_, [&] {
        if (resil::fault_fires(point, key)) {
          throw resil::FaultError(std::string("injected ") + point +
                                  " fault, key " + std::to_string(key));
        }
        body();
      });
    } catch (const resil::TransientError&) {
      out.faulted = retry_.max_retries + 1;
      out.ok = false;
    }
    return out;
  };

  // Per-run, per-device bookkeeping the driver below fills in: modeled
  // seconds attributed to each stream lane (for the per-stream tracer
  // tracks) and the in-flight high-water mark.
  std::vector<std::vector<double>> stream_xfer_s(
      k, std::vector<double>(static_cast<std::size_t>(S), 0.0));
  std::vector<std::vector<double>> stream_comp_s(
      k, std::vector<double>(static_cast<std::size_t>(S), 0.0));
  std::vector<int> high_water(k, 0);

  // One device's chunk driver, generalized from the old double buffer to S
  // streams x a ring of Stream::kRingDepth slots each: up to 2*S chunks in
  // flight, chunk at list position p on stream p % S. The advance loop is
  // non-blocking — it polls the oldest slot's atomic phase and yields, never
  // sleeps or waits on a future (vmc_lint: lockstep-wait-in-stream).
  // Determinism: transfers are staged eagerly and UNCONDITIONALLY in list
  // order onto one DMA lane — before the breaker rules on their chunk — so
  // fault-point hit counts are a pure function of the chunk list; computes
  // retire strictly in list order on this driver, so the breaker (single
  // writer) sees the same outcome sequence at every depth S.
  const auto drive_device = [&](std::size_t d,
                                const std::vector<std::size_t>& list,
                                bool stealing) {
    DeviceState& dev = pool.at(d);
    if (list.empty()) return;
    if (stealing) dev.steals_in += static_cast<int>(list.size());

    // Ring storage first, DMA pool last: ~ThreadPool joins the lane before
    // the buffers it writes go away.
    std::vector<Stream> streams;
    streams.reserve(static_cast<std::size_t>(S));
    for (int s = 0; s < S; ++s) streams.emplace_back(s);
    std::vector<std::array<simd::aligned_vector<double>, Stream::kRingDepth>>
        staging(static_cast<std::size_t>(S));
    std::vector<std::array<StageOutcome, Stream::kRingDepth>> xfer(
        static_cast<std::size_t>(S));
    ThreadPool dma(1);

    std::size_t next_stage = 0;    // next list position to put in flight
    std::size_t next_compute = 0;  // next list position to sweep + retire
    while (next_compute < list.size()) {
      // Fill: stage transfers in list order until every target ring is full
      // (the in-flight window is the 2*S positions [next_compute,
      // next_stage)). Futures are discarded — completion is signalled by
      // the slot phase, not by blocking on the pool.
      while (next_stage < list.size()) {
        const int s = static_cast<int>(next_stage % static_cast<std::size_t>(S));
        Stream& st = streams[static_cast<std::size_t>(s)];
        if (!st.can_stage()) break;
        const int slot = st.stage(next_stage);
        const std::size_t gi = list[next_stage];
        dma.submit([&, d, s, slot, gi] {
          // DMA lane: ship the chunk into its ring slot. The span lands on
          // the lane's own track, so the exported trace shows transfer(k+1)
          // overlapping compute(k).
          Stream& lane = streams[static_cast<std::size_t>(s)];
          lane.begin_transfer(slot);
          obs::Tracer::Scope span(obs::tracer(), "pcie_transfer", "offload");
          const Chunk& c = chunks[gi];
          xfer[static_cast<std::size_t>(s)][static_cast<std::size_t>(slot)] =
              run_stage(
                  "offload.transfer",
                  resil::device_key(d, resil::transfer_lane(
                                           static_cast<std::uint64_t>(s)),
                                    gi),
                  [&] {
                    staging[static_cast<std::size_t>(s)]
                           [static_cast<std::size_t>(slot)]
                               .assign(energies.begin() +
                                           static_cast<std::ptrdiff_t>(c.begin),
                                       energies.begin() +
                                           static_cast<std::ptrdiff_t>(c.end));
                  });
          lane.mark_transferred(slot);
        });
        ++next_stage;
      }
      high_water[d] = std::max(high_water[d],
                               static_cast<int>(next_stage - next_compute));

      const int s =
          static_cast<int>(next_compute % static_cast<std::size_t>(S));
      Stream& st = streams[static_cast<std::size_t>(s)];
      if (!st.front_transferred(next_compute)) {
        // Non-blocking advance: the oldest chunk's bank is still on the
        // link. Yield and re-poll (the terminal drain included).
        std::this_thread::yield();
        continue;
      }
      const int slot = st.front_slot();
      const std::size_t gi = list[next_compute];
      const Chunk& c = chunks[gi];
      const StageOutcome& tx =
          xfer[static_cast<std::size_t>(s)][static_cast<std::size_t>(slot)];

      if (dev.health.admit()) {
        StageOutcome comp;
        if (tx.ok) {
          st.begin_compute(slot);
          {
            obs::Tracer::Scope span(obs::tracer(), "banked_sweep", "offload");
            comp = run_stage(
                "offload.compute",
                resil::device_key(
                    d, resil::compute_lane(static_cast<std::uint64_t>(s)), gi),
                [&] {
                  const auto& bank = staging[static_cast<std::size_t>(s)]
                                            [static_cast<std::size_t>(slot)];
                  totals[gi].resize(bank.size());
                  xs::macro_total_banked(lib_, c.material, bank, totals[gi],
                                         lookup_);
                });
          }
          st.finish_compute(slot);
        } else {
          // The bank never crossed the link; there is nothing to sweep, but
          // the slot still drains through the ring in order.
          comp.ok = false;
          st.skip_compute(slot);
        }
        const bool ok = tx.ok && comp.ok;
        const int faults = tx.faulted + comp.faulted;
        if (ok) {
          done[gi] = 1;
          ++dev.chunks_ok;
          dev.retries += faults;
          const std::size_t len = c.end - c.begin;
          const double terms =
              static_cast<double>(lib_.material(c.material).size());
          const double mx =
              dev.model.transfer_seconds(len * sizeof(double), false);
          const double mc = dev.model.banked_lookup_seconds(len, terms);
          dev.model_transfer_s += mx;
          dev.model_compute_s += mc;
          stream_xfer_s[d][static_cast<std::size_t>(s)] += mx;
          stream_comp_s[d][static_cast<std::size_t>(s)] += mc;
        } else {
          ++dev.chunks_failed;
        }
        dev.health.record_chunk(faults, ok);
      } else {
        ++dev.chunks_skipped;
        st.skip_compute(slot);
      }

      st.retire();
      ++next_compute;
    }
    // Every staged transfer was consumed above, so the DMA lane is idle;
    // ~ThreadPool joins it.
  };

  const double t0 = prof::now_seconds();

  // --- phase 1: static generalized-alpha assignment -------------------------
  const std::vector<std::size_t> owner = pool.assign(n_chunks);
  std::vector<std::vector<std::size_t>> lists(k);
  for (std::size_t i = 0; i < n_chunks; ++i) lists[owner[i]].push_back(i);
  {
    ThreadPool drivers(static_cast<int>(k));
    std::vector<std::future<void>> joins;
    for (std::size_t d = 0; d < k; ++d) {
      if (lists[d].empty()) continue;
      joins.push_back(
          drivers.submit([&drive_device, &lists, d] { drive_device(d, lists[d], false); }));
    }
    for (auto& j : joins) j.get();
  }

  // --- phase 2: reschedule onto accepting peers (work stealing) -------------
  std::vector<std::size_t> leftover;
  for (std::size_t i = 0; i < n_chunks; ++i) {
    if (done[i] == 0) leftover.push_back(i);
  }
  if (!leftover.empty()) {
    const std::vector<std::size_t> peers = pool.accepting_devices();
    if (!peers.empty()) {
      // Deterministic round-robin over the accepting devices, in chunk
      // order — the breaker states feeding accepting_devices() are
      // themselves deterministic, so the steal map is too.
      std::vector<std::vector<std::size_t>> steal_lists(k);
      for (std::size_t j = 0; j < leftover.size(); ++j) {
        steal_lists[peers[j % peers.size()]].push_back(leftover[j]);
      }
      ThreadPool drivers(static_cast<int>(peers.size()));
      std::vector<std::future<void>> joins;
      for (const std::size_t d : peers) {
        if (steal_lists[d].empty()) continue;
        joins.push_back(drivers.submit(
            [&drive_device, &steal_lists, d] { drive_device(d, steal_lists[d], true); }));
      }
      for (auto& j : joins) j.get();
      for (const std::size_t i : leftover) {
        if (done[i] != 0) ++run.rescheduled_stages;
      }
    }
  }

  // --- phase 3: the host floor ----------------------------------------------
  // Still-unswept chunks run here, on the SAME banked kernel over the same
  // bits: degradation re-attributes throughput (host rate, no link), it
  // never changes arithmetic — that is the bit-identity contract. No fault
  // points fire on this tier; the host is the deterministic terminal floor.
  {
    simd::aligned_vector<double> host_staging;
    for (std::size_t i = 0; i < n_chunks; ++i) {
      if (done[i] != 0) continue;
      const Chunk& c = chunks[i];
      obs::Tracer::Scope span(obs::tracer(), "host_floor_sweep", "offload");
      host_staging.assign(
          energies.begin() + static_cast<std::ptrdiff_t>(c.begin),
          energies.begin() + static_cast<std::ptrdiff_t>(c.end));
      totals[i].resize(host_staging.size());
      xs::macro_total_banked(lib_, c.material, host_staging, totals[i],
                             lookup_);
      done[i] = 1;
      ++run.degraded_stages;
    }
  }

  run.wall_s = prof::now_seconds() - t0;

  // Fixed-order reduction in global chunk order: the checksum must not
  // depend on which tier swept a chunk or how devices interleaved
  // (core/tally.hpp on order dependence).
  double checksum = 0.0;
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < n_chunks; ++i) {
    checksum += core::ordered_sum(totals[i]);
    bytes += (chunks[i].end - chunks[i].begin) * sizeof(double);
  }
  run.checksum = checksum;
  run.n_stages = static_cast<int>(n_chunks);

  // --- reports, metrics, device tracks --------------------------------------
  // Everything below is a PER-RUN delta against the entry snapshot, so a
  // persistent pool (lifetime counters spanning runs) reports each run the
  // same way a fresh pool does.
  for (std::size_t d = 0; d < k; ++d) {
    DeviceState& dev = pool.at(d);
    dev.streams = S;
    dev.inflight_high_water = high_water[d];
    DeviceReport r;
    r.name = dev.model.spec().name;
    r.final_state = dev.health.state();
    r.chunks_ok = dev.chunks_ok - snap[d].ok;
    r.chunks_failed = dev.chunks_failed - snap[d].failed;
    r.chunks_skipped = dev.chunks_skipped - snap[d].skipped;
    r.retries = dev.retries - snap[d].retries;
    r.trips = dev.health.trips() - snap[d].trips;
    r.probes = dev.health.probes() - snap[d].probes;
    r.steals_in = dev.steals_in - snap[d].steals;
    r.streams = S;
    r.inflight_high_water = high_water[d];
    run.devices.push_back(r);
    run.retries += r.retries;
    run.inflight_high_water = std::max(run.inflight_high_water, high_water[d]);

    obs::metrics()
        .counter("vmc_offload_device_retries_total", device_label(d),
                 "Per-device offload faults absorbed by retries")
        .inc(static_cast<std::uint64_t>(r.retries));
    obs::metrics()
        .counter("vmc_offload_device_trips_total", device_label(d),
                 "Per-device circuit-breaker trips")
        .inc(static_cast<std::uint64_t>(r.trips));
    obs::metrics()
        .counter("vmc_offload_device_steals_total", device_label(d),
                 "Chunks rescheduled onto this device from a faulted peer")
        .inc(static_cast<std::uint64_t>(r.steals_in));
    obs::metrics()
        .gauge("vmc_offload_device_health_state", device_label(d),
               "Breaker state after the last pipelined run "
               "(0 healthy, 1 suspect, 2 tripped, 3 half_open)")
        .set(static_cast<double>(static_cast<int>(dev.health.state())));
    obs::metrics()
        .gauge("vmc_offload_inflight_chunks", device_label(d),
               "Most chunks in flight at once on this device during the last "
               "pipelined run (window bound: 2 x stream depth)")
        .set(static_cast<double>(high_water[d]));

    const double run_xfer_s = dev.model_transfer_s - snap[d].xfer_s;
    const double run_comp_s = dev.model_compute_s - snap[d].comp_s;
    if (tracing && r.chunks_ok > 0) {
      const int pid = obs::Tracer::kDevicePid + static_cast<int>(d);
      obs::JsonWriter args;
      args.begin_object()
          .member("device", dev.model.spec().name)
          .member("chunks", static_cast<std::uint64_t>(
                                static_cast<unsigned>(r.chunks_ok)))
          .member("streams", static_cast<std::uint64_t>(
                                 static_cast<unsigned>(S)))
          .end_object();
      tr.inject_span(pid, 1, "model:pcie_transfer", "offload-model", trace_t0,
                     run_xfer_s, args.str());
      tr.inject_span(pid, 2, "model:banked_sweep", "offload-model",
                     trace_t0 + run_xfer_s, run_comp_s);
      tr.set_thread_name(pid, 1, "pcie (modeled)");
      tr.set_thread_name(pid, 2, "device sweep (modeled)");
      // Per-stream tracks (tid 10+s): each stream's modeled transfer leg
      // followed by its modeled sweep leg, so Perfetto shows how the device
      // aggregate divides across the S streams.
      for (int s = 0; s < S; ++s) {
        const int tid = 10 + s;
        const double sx = stream_xfer_s[d][static_cast<std::size_t>(s)];
        const double sc = stream_comp_s[d][static_cast<std::size_t>(s)];
        tr.inject_span(pid, tid, "model:stream_transfer", "offload-model",
                       trace_t0, sx);
        tr.inject_span(pid, tid, "model:stream_sweep", "offload-model",
                       trace_t0 + sx, sc);
        tr.set_thread_name(pid, tid,
                           "stream " + std::to_string(s) + " (modeled)");
      }
    }
  }

  offload_retries_counter().inc(static_cast<std::uint64_t>(run.retries));
  offload_degraded_counter().inc(
      static_cast<std::uint64_t>(run.degraded_stages));
  offload_rescheduled_counter().inc(
      static_cast<std::uint64_t>(run.rescheduled_stages));
  offload_bytes_counter().inc(bytes);
  static const obs::Histogram h_stage = obs::metrics().histogram(
      "vmc_offload_pipeline_stage_seconds",
      {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0}, {},
      "Mean per-stage wall time of the double-buffered pipeline");
  if (run.n_stages > 0) h_stage.observe(run.wall_s / run.n_stages);
  return run;
}

double OffloadRuntime::pipelined_seconds(std::size_t n_particles, double terms,
                                         int n_banks) const {
  if (n_banks <= 0) return 0.0;
  const CostModel& device = devices_.front();
  const std::size_t per_bank = n_particles / static_cast<std::size_t>(n_banks);
  const double transfer =
      device.transfer_seconds(per_bank * offload_record_bytes(), false);
  const double compute = device.banked_lookup_seconds(per_bank, terms);
  // Double buffering: transfer of bank i+1 overlaps compute of bank i. The
  // first transfer and the last compute cannot be hidden:
  //   T = t_1 + sum_{i=2..n} max(t_i, c_{i-1}) + c_n.
  return transfer + (n_banks - 1) * std::max(transfer, compute) + compute;
}

double OffloadRuntime::pipelined_depth_seconds(
    std::span<const std::size_t> chunk_particles, double terms,
    int streams) const {
  if (streams < 1) {
    throw std::invalid_argument("pipelined_depth_seconds: streams must be >= 1");
  }
  if (chunk_particles.empty()) return 0.0;
  const CostModel& device = devices_.front();
  const std::size_t n = chunk_particles.size();
  const std::size_t window = 2 * static_cast<std::size_t>(streams);
  // Two-lane pipeline with a bounded in-flight window: transfer i may not
  // start until chunk i - 2S has retired (its ring slot frees), and computes
  // run in order. ft/fc are the lanes' finish times.
  std::vector<double> ft(n), fc(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = device.transfer_seconds(
        chunk_particles[i] * offload_record_bytes(), false);
    const double c = device.banked_lookup_seconds(chunk_particles[i], terms);
    double start_t = i > 0 ? ft[i - 1] : 0.0;
    if (i >= window) start_t = std::max(start_t, fc[i - window]);
    ft[i] = start_t + t;
    fc[i] = std::max(i > 0 ? fc[i - 1] : 0.0, ft[i]) + c;
  }
  return fc[n - 1];
}

void OffloadRuntime::set_stream_depth(int streams) {
  if (streams < 1) {
    throw std::invalid_argument("OffloadRuntime: stream depth must be >= 1");
  }
  stream_depth_ = streams;
}

DevicePool& OffloadRuntime::acquire_pool(
    std::unique_ptr<DevicePool>& fresh) const {
  if (persistent_) {
    if (!persistent_pool_) {
      persistent_pool_ = std::make_unique<DevicePool>(devices_, breaker_);
    }
    return *persistent_pool_;
  }
  fresh = std::make_unique<DevicePool>(devices_, breaker_);
  return *fresh;
}

OffloadRuntime::PipelineRun OffloadRuntime::host_floor_all(
    std::span<const double> energies, std::span<const Chunk> chunks,
    DevicePool& pool) const {
  PipelineRun run;
  const std::size_t n_chunks = chunks.size();
  run.stream_depth = stream_depth_;
  run.n_stages = static_cast<int>(n_chunks);
  run.degraded_stages = static_cast<int>(n_chunks);

  // Same chunk split, same kernel, same += order as pipeline_chunks' final
  // reduction — the checksum is bit-identical to any device-path run over
  // these chunks. One reused staging buffer; no transfers, no fault points.
  const double t0 = prof::now_seconds();
  simd::aligned_vector<double> host_staging;
  simd::aligned_vector<double> totals;
  double checksum = 0.0;
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < n_chunks; ++i) {
    const Chunk& c = chunks[i];
    obs::Tracer::Scope span(obs::tracer(), "host_floor_sweep", "offload");
    host_staging.assign(energies.begin() + static_cast<std::ptrdiff_t>(c.begin),
                        energies.begin() + static_cast<std::ptrdiff_t>(c.end));
    totals.resize(host_staging.size());
    xs::macro_total_banked(lib_, c.material, host_staging, totals, lookup_);
    checksum += core::ordered_sum(totals);
    bytes += (c.end - c.begin) * sizeof(double);
  }
  run.wall_s = prof::now_seconds() - t0;
  run.checksum = checksum;

  for (std::size_t d = 0; d < pool.size(); ++d) {
    DeviceState& dev = pool.at(d);
    dev.streams = stream_depth_;
    dev.inflight_high_water = 0;
    DeviceReport r;
    r.name = dev.model.spec().name;
    r.final_state = dev.health.state();
    r.streams = stream_depth_;
    run.devices.push_back(r);
    obs::metrics()
        .gauge("vmc_offload_device_health_state", device_label(d),
               "Breaker state after the last pipelined run "
               "(0 healthy, 1 suspect, 2 tripped, 3 half_open)")
        .set(static_cast<double>(static_cast<int>(dev.health.state())));
    obs::metrics()
        .gauge("vmc_offload_inflight_chunks", device_label(d),
               "Most chunks in flight at once on this device during the last "
               "pipelined run (window bound: 2 x stream depth)")
        .set(0.0);
  }

  offload_degraded_counter().inc(static_cast<std::uint64_t>(n_chunks));
  offload_bytes_counter().inc(bytes);
  return run;
}

}  // namespace vmc::exec
