#include "exec/offload.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <vector>

#include "core/tally.hpp"
#include "geom/geometry.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/profiler.hpp"
#include "rng/stream.hpp"
#include "exec/thread_pool.hpp"
#include "xsdata/lookup.hpp"

namespace vmc::exec {

namespace {

// Shared offload-resilience series; bumped by both the single-iteration and
// the pipelined paths so one exposition covers either driver.
const obs::Counter& offload_retries_counter() {
  static const obs::Counter c = obs::metrics().counter(
      "vmc_offload_retries_total", {},
      "Offload transfer/compute faults that were retried successfully");
  return c;
}

const obs::Counter& offload_degraded_counter() {
  static const obs::Counter c = obs::metrics().counter(
      "vmc_offload_degraded_stages_total", {},
      "Offload stages that fell back to the scalar host sweep");
  return c;
}

const obs::Counter& offload_bytes_counter() {
  static const obs::Counter c = obs::metrics().counter(
      "vmc_offload_transfer_bytes_total", {},
      "Bytes shipped over the modeled PCIe link");
  return c;
}

}  // namespace

std::size_t offload_record_bytes() {
  return particle::SoABank::bytes_per_particle() +
         sizeof(geom::Geometry::State) + sizeof(std::uint64_t);
}

OffloadRuntime::IterationReport OffloadRuntime::run_iteration(
    int material, std::size_t n, std::uint64_t seed) const {
  IterationReport rep;
  const auto& mat = lib_.material(material);
  const double terms = static_cast<double>(mat.size());

  obs::Tracer& tr = obs::tracer();
  const bool tracing = tr.enabled();
  if (tracing) {
    tr.set_process_name(obs::Tracer::kHostPid, "host (measured)");
    tr.set_process_name(obs::Tracer::kDevicePid,
                        device_.spec().name + " (cost model)");
  }

  // --- bank particles (real, timed) ---------------------------------------
  rng::Stream rs(seed);
  particle::SoABank bank(n);
  if (tracing) tr.begin("bank_particles", "offload");
  const double t0 = prof::now_seconds();
  for (std::size_t i = 0; i < n; ++i) {
    // Log-uniform energies: what the bank looks like mid-simulation.
    const double e = xs::kEnergyMin *
                     std::pow(xs::kEnergyMax / xs::kEnergyMin, rs.next());
    bank.push(geom::Position{rs.next(), rs.next(), rs.next()},
              geom::Direction{0, 0, 1}, e, 1.0, i, material);
  }
  rep.wall_bank_s = prof::now_seconds() - t0;
  if (tracing) tr.end();

  // --- banked SIMD sweep (real, timed; the "device" leg) -------------------
  // Fault point offload.compute: a transient device failure is retried with
  // backoff; a persistent one degrades this iteration to the scalar host
  // sweep — same physics, host throughput.
  std::vector<xs::XsSet> out(n);
  if (tracing) tr.begin("banked_lookup_sweep", "offload");
  const double t1 = prof::now_seconds();
  const double sweep_ts = tracing ? tr.now_s() : 0.0;
  try {
    rep.retries += resil::retry_with_backoff(retry_, [&] {
      if (resil::fault_fires("offload.compute", 0)) {
        throw resil::FaultError(
            "injected offload.compute fault (banked lookup sweep)");
      }
      xs::macro_xs_banked(lib_, material, bank.energy, out, lookup_);
    });
  } catch (const resil::TransientError&) {
    rep.degraded = true;
    xs::macro_xs_banked_scalar(lib_, material, bank.energy, out, lookup_);
  }
  rep.wall_banked_lookup_s = prof::now_seconds() - t1;
  if (tracing) tr.end();

  // --- scalar control sweep (real, timed) ----------------------------------
  const double t2 = prof::now_seconds();
  xs::macro_xs_banked_scalar(lib_, material, bank.energy, out, lookup_);
  rep.wall_scalar_lookup_s = prof::now_seconds() - t2;

  // --- Sigma_t-only sweeps (what Algorithm 1 / Fig. 2 actually compute) ----
  std::vector<double> totals(n);
  const double t3 = prof::now_seconds();
  try {
    rep.retries += resil::retry_with_backoff(retry_, [&] {
      if (resil::fault_fires("offload.compute", 1)) {
        throw resil::FaultError(
            "injected offload.compute fault (banked total sweep)");
      }
      xs::macro_total_banked(lib_, material, bank.energy, totals, lookup_);
    });
  } catch (const resil::TransientError&) {
    rep.degraded = true;
    for (std::size_t i = 0; i < n; ++i) {
      totals[i] =
          xs::macro_total_history(lib_, material, bank.energy[i], lookup_);
    }
  }
  rep.wall_banked_total_s = prof::now_seconds() - t3;
  const double t4 = prof::now_seconds();
  for (std::size_t i = 0; i < n; ++i) {
    totals[i] =
          xs::macro_total_history(lib_, material, bank.energy[i], lookup_);
  }
  rep.wall_scalar_total_s = prof::now_seconds() - t4;

  // --- byte counts (real) ---------------------------------------------------
  rep.bank_bytes = n * offload_record_bytes();
  rep.grid_bytes =
      lib_.union_bytes() + lib_.pointwise_bytes() + lib_.hash_bytes();

  // --- paper-hardware projections -------------------------------------------
  rep.model_bank_host_s = host_.bank_seconds(n);
  rep.model_bank_device_s = device_.bank_seconds(n);
  rep.model_transfer_s = device_.transfer_seconds(rep.bank_bytes, false);
  rep.model_grid_transfer_s = device_.transfer_seconds(rep.grid_bytes, true);
  rep.model_compute_device_s = device_.banked_lookup_seconds(n, terms);
  rep.model_compute_host_s = host_.scalar_lookup_seconds(n, terms);

  // Synthetic device track: the cost-model's projected transfer + compute
  // legs, anchored at the measured banked sweep so Perfetto shows the
  // modeled MIC timeline directly under the host's measured one.
  if (tracing) {
    obs::JsonWriter args;
    args.begin_object()
        .member("bank_bytes", static_cast<std::uint64_t>(rep.bank_bytes))
        .member("device", device_.spec().name)
        .end_object();
    tr.inject_span(obs::Tracer::kDevicePid, 1, "model:pcie_transfer",
                   "offload-model", sweep_ts, rep.model_transfer_s,
                   args.str());
    tr.inject_span(obs::Tracer::kDevicePid, 2, "model:banked_sweep",
                   "offload-model", sweep_ts + rep.model_transfer_s,
                   rep.model_compute_device_s);
    tr.set_thread_name(obs::Tracer::kDevicePid, 1, "pcie (modeled)");
    tr.set_thread_name(obs::Tracer::kDevicePid, 2, "device sweep (modeled)");
  }

  offload_retries_counter().inc(static_cast<std::uint64_t>(rep.retries));
  if (rep.degraded) offload_degraded_counter().inc();
  offload_bytes_counter().inc(rep.bank_bytes);
  return rep;
}

OffloadRuntime::RatioPoint OffloadRuntime::ratios(const WorkProfile& w,
                                                  std::size_t n) const {
  RatioPoint p;
  p.n = n;
  p.generation_s = host_.generation_seconds(w, n);
  const std::size_t lookups =
      static_cast<std::size_t>(w.lookups_per_particle * static_cast<double>(n));
  const double terms = w.terms_per_lookup;

  const double bank_cpu = host_.bank_seconds(n);
  const double transfer =
      device_.transfer_seconds(n * offload_record_bytes(), false);
  // A device sweep pays the device's launch overhead once per iteration.
  const double xs_mic = device_.banked_lookup_seconds(lookups, terms) +
                        device_.spec().generation_overhead_s * 0.1;
  const double xs_cpu = host_.scalar_lookup_seconds(lookups, terms);

  p.bank_cpu = bank_cpu / p.generation_s;
  p.offload = transfer / p.generation_s;
  p.xs_mic = xs_mic / p.generation_s;
  p.xs_cpu = xs_cpu / p.generation_s;
  return p;
}

OffloadRuntime::PipelineRun OffloadRuntime::run_pipelined(
    int material, std::span<const double> energies, int n_banks) const {
  if (n_banks <= 0 || energies.empty()) return {};
  const std::size_t n = energies.size();
  const std::size_t per =
      (n + static_cast<std::size_t>(n_banks) - 1) /
      static_cast<std::size_t>(n_banks);
  std::vector<Chunk> chunks;
  for (std::size_t b = 0; b < n; b += per) {
    chunks.push_back(Chunk{material, b, std::min(n, b + per)});
  }
  return pipeline_chunks(energies, chunks);
}

OffloadRuntime::PipelineRun OffloadRuntime::run_pipelined_queues(
    const particle::SoABank& bank, std::span<const core::MaterialRun> runs,
    int n_banks) const {
  if (n_banks <= 0 || bank.empty()) return {};
  const std::size_t n = bank.size();
  // Split the compacted material runs into ~n_banks pipeline stages; a run
  // never spans two stages (each stage's device sweep is one homogeneous
  // material), so short runs cost one stage each.
  const std::size_t per = std::max<std::size_t>(
      1, (n + static_cast<std::size_t>(n_banks) - 1) /
             static_cast<std::size_t>(n_banks));
  std::vector<Chunk> chunks;
  for (const core::MaterialRun& r : runs) {
    for (std::size_t b = r.begin; b < r.end; b += per) {
      chunks.push_back(Chunk{r.material, b, std::min(r.end, b + per)});
    }
  }
  if (chunks.empty()) return {};
  return pipeline_chunks(std::span<const double>(bank.energy), chunks);
}

OffloadRuntime::PipelineRun OffloadRuntime::pipeline_chunks(
    std::span<const double> energies, std::span<const Chunk> chunks) const {
  PipelineRun run;

  ThreadPool pool(2);  // one "DMA" lane, one "device" lane
  // Two staging buffers: while the device sweeps buffer `cur`, the DMA lane
  // fills buffer `nxt` — the classic double buffer.
  simd::aligned_vector<double> staging[2];
  simd::aligned_vector<double> totals[2];

  struct StageState {
    int retries = 0;
    bool degraded = false;
  };

  // The "DMA" leg: ship chunk [b, e) into staging[buf]. Fault point
  // offload.transfer is keyed by the stage index so the injection schedule
  // is deterministic no matter how the two pool lanes interleave. Transient
  // faults are retried with backoff; exhausted retries mean the bank never
  // reached the device and the stage degrades to the host path.
  const auto transfer_stage = [&](int stage, std::size_t b, std::size_t e,
                                  int buf) {
    // Runs on a pool lane: the span lands on that lane's own track, so the
    // exported trace shows transfer(i+1) overlapping compute(i).
    obs::Tracer::Scope span(obs::tracer(), "pcie_transfer", "offload");
    StageState st;
    try {
      st.retries = resil::retry_with_backoff(retry_, [&] {
        if (resil::fault_fires("offload.transfer",
                               static_cast<std::uint64_t>(stage))) {
          throw resil::FaultError("injected offload.transfer fault, stage " +
                                  std::to_string(stage));
        }
        staging[buf].assign(energies.begin() + static_cast<std::ptrdiff_t>(b),
                            energies.begin() + static_cast<std::ptrdiff_t>(e));
      });
    } catch (const resil::TransientError&) {
      st.degraded = true;
    }
    return st;
  };

  const double t0 = prof::now_seconds();

  // Prime the first transfer (cannot be hidden).
  const int n_chunks = static_cast<int>(chunks.size());
  int cur = 0;
  int stage = 0;
  StageState cur_transfer =
      transfer_stage(stage, chunks[0].begin, chunks[0].end, cur);
  double checksum = 0.0;
  std::size_t bytes = 0;
  while (stage < n_chunks) {
    const Chunk& c = chunks[static_cast<std::size_t>(stage)];
    const int nxt = 1 - cur;

    StageState next_transfer;
    std::future<void> transfer;
    if (stage + 1 < n_chunks) {
      const Chunk& cn = chunks[static_cast<std::size_t>(stage) + 1];
      transfer = pool.submit([&, cn, nxt, stage] {
        next_transfer = transfer_stage(stage + 1, cn.begin, cn.end, nxt);
      });
    }
    StageState comp;
    auto compute = pool.submit([&, c, cur, stage] {
      obs::Tracer::Scope span(obs::tracer(), "banked_sweep", "offload");
      if (cur_transfer.degraded) {
        // Graceful degradation: the bank never made it across the link, so
        // sweep the pristine host-resident energies with the scalar host
        // kernel. Same checksum, host-rate throughput.
        totals[cur].resize(c.end - c.begin);
        for (std::size_t i = c.begin; i < c.end; ++i) {
          totals[cur][i - c.begin] =
              xs::macro_total_history(lib_, c.material, energies[i], lookup_);
        }
        return;
      }
      try {
        comp.retries = resil::retry_with_backoff(retry_, [&] {
          if (resil::fault_fires("offload.compute",
                                 static_cast<std::uint64_t>(stage))) {
            throw resil::FaultError("injected offload.compute fault, stage " +
                                    std::to_string(stage));
          }
          totals[cur].resize(staging[cur].size());
          xs::macro_total_banked(lib_, c.material, staging[cur], totals[cur],
                                 lookup_);
        });
      } catch (const resil::TransientError&) {
        // The bank IS on the device but its sweep keeps failing: fall back
        // to the scalar host kernel over the staged copy.
        comp.degraded = true;
        totals[cur].resize(staging[cur].size());
        for (std::size_t i = 0; i < staging[cur].size(); ++i) {
          totals[cur][i] =
              xs::macro_total_history(lib_, c.material, staging[cur][i],
                                      lookup_);
        }
      }
    });
    compute.get();
    if (transfer.valid()) transfer.get();
    // Fixed-order reduction: the pipeline checksum must not depend on how
    // the chunk boundaries fell (core/tally.hpp on order dependence).
    checksum += core::ordered_sum(totals[cur]);

    run.retries += cur_transfer.retries + comp.retries;
    if (cur_transfer.degraded || comp.degraded) ++run.degraded_stages;

    bytes += (c.end - c.begin) * sizeof(double);
    ++run.n_stages;
    ++stage;
    cur = nxt;
    cur_transfer = next_transfer;
  }
  run.wall_s = prof::now_seconds() - t0;
  run.checksum = checksum;

  offload_retries_counter().inc(static_cast<std::uint64_t>(run.retries));
  offload_degraded_counter().inc(static_cast<std::uint64_t>(run.degraded_stages));
  offload_bytes_counter().inc(bytes);
  static const obs::Histogram h_stage = obs::metrics().histogram(
      "vmc_offload_pipeline_stage_seconds",
      {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0}, {},
      "Mean per-stage wall time of the double-buffered pipeline");
  if (run.n_stages > 0) h_stage.observe(run.wall_s / run.n_stages);
  return run;
}

double OffloadRuntime::pipelined_seconds(std::size_t n_particles, double terms,
                                         int n_banks) const {
  if (n_banks <= 0) return 0.0;
  const std::size_t per_bank = n_particles / static_cast<std::size_t>(n_banks);
  const double transfer =
      device_.transfer_seconds(per_bank * offload_record_bytes(), false);
  const double compute = device_.banked_lookup_seconds(per_bank, terms);
  // Double buffering: transfer of bank i+1 overlaps compute of bank i. The
  // first transfer and the last compute cannot be hidden:
  //   T = t_1 + sum_{i=2..n} max(t_i, c_{i-1}) + c_n.
  return transfer + (n_banks - 1) * std::max(transfer, compute) + compute;
}

}  // namespace vmc::exec
