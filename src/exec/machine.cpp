#include "exec/machine.hpp"

#include <algorithm>
#include <cmath>

namespace vmc::exec {

// ---------------------------------------------------------------------------
// Device specs.
//
// Calibration notes (paper targets in parentheses):
//  * alpha = host_rate / mic_rate ~ 0.61-0.62 on JLSE for N >= 1e4 (Fig. 5,
//    Table III). With uniform scalar penalty P on the MIC and thread pools
//    32*0.80 = 25.6 vs 244*0.72 = 175.7, alpha = P / (175.7/25.6) = P/6.86,
//    so P = 4.2.
//  * Banked SIMD lookups on the MIC ~10x the host's scalar history lookups
//    for 300+-nuclide materials (Fig. 2) -> 16 ns/term banked on MIC.
//  * Table I: the optimized kernels are bandwidth-bound (1.2 TB moved:
//    40.6 s -> ~30 GB/s host, 21 s -> ~60 GB/s MIC); the naive kernel costs
//    ~105 ns/sample/thread on the host and ~7.2 us on the MIC (the
//    catastrophic scalar rand_r/log path the paper measured).
//  * PCIe: 496 MB bank in 460 ms -> 1.08 GB/s effective for bank payloads;
//    "1 second for every 5 GB" -> 5 GB/s for bulk staging (Table II).
// ---------------------------------------------------------------------------

DeviceSpec DeviceSpec::jlse_host() {
  DeviceSpec s;
  s.name = "CPU (2x E5-2687W, 32t)";
  s.hw_threads = 32;
  s.thread_efficiency = 0.80;
  s.ns_grid_search = 80.0;
  s.ns_lookup_term = 25.0;
  s.ns_collision_base = 120.0;
  s.ns_collision_term = 10.0;
  s.ns_crossing = 250.0;
  s.ns_rng_scalar = 40.0;
  s.ns_lookup_term_banked = 11.0;
  s.ns_rng_vector = 0.8;
  s.ns_log_vector = 0.6;
  s.ns_bank_particle = 40.0;
  s.generation_overhead_s = 0.002;
  s.mem_bw_gbs = 30.0;
  s.ns_naive_sample = 105.0;
  return s;
}

DeviceSpec DeviceSpec::mic_7120a() {
  DeviceSpec s;
  s.name = "MIC (Xeon Phi 7120a, 244t)";
  s.hw_threads = 244;
  s.thread_efficiency = 0.72;
  // Per-op scalar penalties vs. the host. Memory-bound lookups benefit from
  // the MIC's GDDR5 bandwidth (smaller penalty); branch-heavy geometry is
  // hit hardest by the in-order cores. The work-weighted average stays at
  // ~4.2 for the H.M. Large profile, preserving alpha = 0.61-0.62, while
  // the Fig. 4 comparison profile shows the bottleneck routines gaining
  // most from the move to the MIC.
  s.ns_grid_search = 80.0 * 4.1;
  s.ns_lookup_term = 25.0 * 4.1;
  s.ns_collision_base = 120.0 * 4.6;
  s.ns_collision_term = 10.0 * 4.6;
  s.ns_crossing = 250.0 * 5.0;
  s.ns_rng_scalar = 40.0 * 4.5;
  s.ns_lookup_term_banked = 16.0;  // 512-bit gathers recover the penalty
  s.ns_rng_vector = 0.9;
  s.ns_log_vector = 0.5;
  s.ns_bank_particle = 210.0;  // write-intensive, not vectorized (Table II)
  s.generation_overhead_s = 0.010;
  s.mem_bw_gbs = 60.0;
  s.ns_naive_sample = 7240.0;
  s.pcie_bank_gbs = 1.08;
  s.pcie_bulk_gbs = 5.0;
  s.pcie_latency_s = 5.0e-3;  // per-offload invocation (KNC offload runtime)
  return s;
}

DeviceSpec DeviceSpec::stampede_host() {
  DeviceSpec s = jlse_host();
  s.name = "CPU (2x E5-2680, 32t)";
  // Lower clock (2.6-2.7 vs 3.4 GHz) and lower sustained bandwidth; the
  // paper measured alpha = 0.42 at 1e6 particles on Stampede.
  const double p = 1.45;
  s.ns_grid_search *= p;
  s.ns_lookup_term *= p;
  s.ns_collision_base *= p;
  s.ns_collision_term *= p;
  s.ns_crossing *= p;
  s.ns_rng_scalar *= p;
  s.ns_lookup_term_banked *= p;
  s.ns_naive_sample *= p;
  s.mem_bw_gbs = 25.0;
  return s;
}

DeviceSpec DeviceSpec::mic_se10p() {
  DeviceSpec s = mic_7120a();
  s.name = "MIC (Xeon Phi SE10P, 244t)";
  const double p = 1.13;  // 1.238 -> 1.1 GHz
  s.ns_grid_search *= p;
  s.ns_lookup_term *= p;
  s.ns_collision_base *= p;
  s.ns_collision_term *= p;
  s.ns_crossing *= p;
  s.ns_rng_scalar *= p;
  s.ns_lookup_term_banked *= p;
  s.ns_naive_sample *= p;
  s.mem_bw_gbs = 55.0;
  return s;
}

WorkProfile WorkProfile::from_counts(const core::EventCounts& c) {
  WorkProfile w;
  if (c.histories == 0) return w;
  const double h = static_cast<double>(c.histories);
  w.lookups_per_particle = static_cast<double>(c.lookups) / h;
  w.terms_per_lookup =
      c.lookups > 0
          ? static_cast<double>(c.nuclide_terms) / static_cast<double>(c.lookups)
          : 0.0;
  w.collisions_per_particle = static_cast<double>(c.collisions) / h;
  w.crossings_per_particle = static_cast<double>(c.crossings) / h;
  return w;
}

double CostModel::parallel_speedup(int threads) const {
  const int t = std::clamp(resolve_threads(threads), 1, spec_.hw_threads);
  return t == 1 ? 1.0 : t * spec_.thread_efficiency;
}

double CostModel::history_ns_per_particle(const WorkProfile& w) const {
  const double lookup_ns =
      w.lookups_per_particle *
      (spec_.ns_grid_search + w.terms_per_lookup * spec_.ns_lookup_term);
  const double collision_ns =
      w.collisions_per_particle *
      (spec_.ns_collision_base + w.terms_per_lookup * spec_.ns_collision_term);
  const double crossing_ns = w.crossings_per_particle * spec_.ns_crossing;
  const double rng_ns = w.lookups_per_particle * spec_.ns_rng_scalar;
  return lookup_ns + collision_ns + crossing_ns + rng_ns;
}

double CostModel::effective_speedup(std::size_t n, int threads) const {
  const double base = parallel_speedup(threads);
  const int t = std::clamp(resolve_threads(threads), 1, spec_.hw_threads);
  const double ramp = spec_.ramp_particles_per_thread * t;
  const double nn = static_cast<double>(n);
  return base * nn / (nn + ramp);
}

double CostModel::generation_seconds(const WorkProfile& w, std::size_t n,
                                     int threads) const {
  const double serial_s =
      static_cast<double>(n) * history_ns_per_particle(w) * 1e-9;
  return serial_s / effective_speedup(n, threads) +
         spec_.generation_overhead_s;
}

double CostModel::calculation_rate(const WorkProfile& w, std::size_t n,
                                   int threads) const {
  return static_cast<double>(n) / generation_seconds(w, n, threads);
}

double CostModel::banked_lookup_seconds(std::size_t n, double terms,
                                        int threads) const {
  const double per_lookup_ns =
      spec_.ns_grid_search + terms * spec_.ns_lookup_term_banked;
  return static_cast<double>(n) * per_lookup_ns * 1e-9 /
         parallel_speedup(threads);
}

double CostModel::scalar_lookup_seconds(std::size_t n, double terms,
                                        int threads) const {
  const double per_lookup_ns =
      spec_.ns_grid_search + terms * spec_.ns_lookup_term;
  return static_cast<double>(n) * per_lookup_ns * 1e-9 /
         parallel_speedup(threads);
}

double CostModel::bank_seconds(std::size_t n, int /*threads*/) const {
  // Banking is a memory-write-bound operation that does not scale with
  // threads (Table II measures it at full thread count); ns_bank_particle is
  // the effective per-particle wall cost: 40 ns -> 4 ms per 1e5 on the host,
  // 210 ns -> 21 ms on the MIC, matching the paper.
  return static_cast<double>(n) * spec_.ns_bank_particle * 1e-9;
}

double CostModel::naive_sample_seconds(std::size_t n, int threads) const {
  return static_cast<double>(n) * spec_.ns_naive_sample * 1e-9 /
         parallel_speedup(threads);
}

double CostModel::bandwidth_kernel_seconds(std::size_t bytes,
                                           double efficiency) const {
  return static_cast<double>(bytes) / (spec_.mem_bw_gbs * 1e9 * efficiency);
}

double CostModel::transfer_seconds(std::size_t bytes, bool bulk) const {
  const double gbs = bulk ? spec_.pcie_bulk_gbs : spec_.pcie_bank_gbs;
  if (gbs <= 0.0) return 0.0;  // not a PCIe device
  return spec_.pcie_latency_s + static_cast<double>(bytes) / (gbs * 1e9);
}

}  // namespace vmc::exec
