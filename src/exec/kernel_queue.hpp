// Per-event-type kernel queues for the persistent offload scheduler.
//
// The compacting core::EventQueues sorts live particles into same-material
// runs; the scheduler slices those runs into bounded chunks and files each
// chunk under the kernel that will consume it (macroscopic lookup, distance
// to collision, collision processing). Devices then pull work with
// pop_fair(), a rotating cursor over the non-empty queues, so a burst of
// one event type can never starve the others — the fairness property the
// unit tests pin down.
//
// Single-threaded by design: the dispatch loop that feeds devices owns the
// queue set, exactly like exec::HealthMonitor is owned by its driver. The
// determinism contract of the offload path (checksums reduced in global
// chunk order) is unaffected by queue rotation because every popped chunk
// keeps its global ordinal.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

namespace vmc::exec {

/// Which device kernel a queued chunk feeds.
enum class EventKind : int { lookup = 0, distance = 1, collision = 2 };

inline constexpr int kEventKinds = 3;

const char* to_string(EventKind k);

/// One chunk of bank positions destined for a single kernel.
struct KernelChunk {
  EventKind kind = EventKind::lookup;
  int material = 0;
  std::size_t begin = 0;  // bank slice [begin, end)
  std::size_t end = 0;
  std::size_t ordinal = 0;  // global chunk index — fault keys + reduction order

  std::size_t size() const { return end - begin; }
};

/// Bounded-history FIFO for one event kind with occupancy tracking.
class KernelQueue {
 public:
  explicit KernelQueue(EventKind kind) : kind_(kind) {}

  EventKind kind() const { return kind_; }
  bool empty() const { return chunks_.empty(); }
  std::size_t size() const { return chunks_.size(); }
  std::size_t high_water() const { return high_water_; }
  std::uint64_t pushed() const { return pushed_; }
  std::uint64_t popped() const { return popped_; }

  void push(const KernelChunk& c);
  /// FIFO pop; throws std::logic_error when empty.
  KernelChunk pop();

 private:
  EventKind kind_;
  std::deque<KernelChunk> chunks_;
  std::size_t high_water_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
};

/// The three per-event-type queues plus the fair dispatch cursor.
class KernelQueueSet {
 public:
  KernelQueueSet();

  KernelQueue& queue(EventKind k) { return queues_[static_cast<int>(k)]; }
  const KernelQueue& queue(EventKind k) const {
    return queues_[static_cast<int>(k)];
  }

  bool empty() const;
  std::size_t size() const;

  void push(const KernelChunk& c) { queue(c.kind).push(c); }

  /// Round-robin over the non-empty queues: resumes scanning one past the
  /// kind served last, so no kind is starved while any other holds work.
  /// Returns nullopt when all queues are empty.
  std::optional<KernelChunk> pop_fair();

 private:
  std::array<KernelQueue, kEventKinds> queues_;
  int cursor_ = 0;  // next kind to consider
};

}  // namespace vmc::exec
