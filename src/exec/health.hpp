// Per-device health state machine for the multi-device offload executor.
//
// Each modeled device is an isolated fault domain; its breaker walks
//
//      healthy --> suspect --> tripped --> half_open --> healthy
//                     ^________________________|  (probe faults: -> tripped)
//
// driven ONLY by counts — consecutive chunk outcomes and scheduling
// denials, never wall-clock time — so the trajectory is a pure function of
// the chunk-outcome sequence and the run is reproducible under any thread
// interleaving. The per-device pipeline driver is the single writer: it
// replays each chunk's outcome (how many injected faults were observed, and
// whether the chunk ultimately succeeded) at chunk-completion points in
// queue order, and asks admit() before dispatching the next chunk. Faults
// *within* a chunk are absorbed by retry_with_backoff first; the breaker
// only sees chunk-level outcomes, which keeps the two recovery layers
// (retry, then reschedule/degrade) cleanly stacked.
//
// State semantics:
//   healthy    chunks flow normally.
//   suspect    recent chunks needed retries (or one failed); still admitted,
//              but the next failures are counted toward tripping.
//   tripped    `trip_after` consecutive chunks FAILED (retries exhausted):
//              admit() denies work so the scheduler reroutes chunks to
//              healthy peers. Each denial counts toward the cooldown.
//   half_open  after `cooldown_denials` denials the breaker lets exactly one
//              probe chunk through; success closes the breaker (healthy),
//              another failure re-trips it and restarts the cooldown.
#pragma once

#include <cstdint>
#include <string_view>

namespace vmc::exec {

enum class HealthState { healthy, suspect, tripped, half_open };

std::string_view to_string(HealthState s);

/// Breaker thresholds. All counts; validate() rejects non-positive values
/// (a breaker that trips after zero failures would deny all work forever).
struct BreakerPolicy {
  int suspect_after = 1;    // consecutive faulted chunks before suspect
  int trip_after = 3;       // consecutive FAILED chunks before tripped
  int cooldown_denials = 2; // denials while tripped before the half-open probe
  void validate() const;    // throws std::invalid_argument
};

/// One device's breaker. NOT thread-safe by design: the owning pipeline
/// driver is the only reader/writer, which is exactly what makes the state
/// trajectory deterministic.
class HealthMonitor {
 public:
  HealthMonitor() { policy_.validate(); }
  explicit HealthMonitor(BreakerPolicy p) : policy_(p) { policy_.validate(); }

  HealthState state() const { return state_; }
  const BreakerPolicy& policy() const { return policy_; }

  /// Would this device accept rescheduled work right now? Pure read — unlike
  /// admit() it never advances the cooldown — used by the scheduler's
  /// all-dead short-circuit and DevicePool::accepting_devices.
  bool accepting() const {
    return state_ != HealthState::tripped && state_ != HealthState::half_open;
  }

  /// May the next chunk be dispatched to this device? tripped: counts the
  /// denial and — after `cooldown_denials` of them — opens the half-open
  /// window, so the NEXT admit() lets the probe through.
  bool admit();

  /// Replay one chunk's outcome, in queue order. `faults` = injected faults
  /// observed while executing it (transfer + compute attempts); `succeeded` =
  /// the chunk produced its result on this device (possibly after retries).
  void record_chunk(int faults, bool succeeded);

  // Lifetime counters (for DeviceReport / metrics).
  int trips() const { return trips_; }
  int probes() const { return probes_; }
  int denials() const { return denials_total_; }
  int faulted_chunks() const { return faulted_chunks_; }
  int failed_chunks() const { return failed_chunks_; }

 private:
  BreakerPolicy policy_;
  HealthState state_ = HealthState::healthy;
  int fault_streak_ = 0;   // consecutive chunks that observed >= 1 fault
  int fail_streak_ = 0;    // consecutive chunks whose retries were exhausted
  int cooldown_ = 0;       // denials since the breaker (re-)tripped
  bool probe_armed_ = false;  // half-open window: one probe may pass
  int trips_ = 0;
  int probes_ = 0;
  int denials_total_ = 0;
  int faulted_chunks_ = 0;
  int failed_chunks_ = 0;
};

}  // namespace vmc::exec
