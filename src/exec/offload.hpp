// Offload-mode runtime: particle banking + coprocessor offload pipeline
// (Section III-A3, Table II, Figure 3), generalized to a fault-domain-aware
// multi-device executor.
//
// The pipeline reproduces the paper's measurement structure:
//   1. particles are banked into a 64-byte-aligned SoA bank (real, timed on
//      this host),
//   2. the bank + per-particle tracking state are "shipped" over a modeled
//      PCIe link (byte counts are real, link speed from the calibrated
//      DeviceSpec),
//   3. the banked cross-section sweep runs — really, on this host's vector
//      units — and is *also* projected onto the MIC cost model,
//   4. each device runs S streams (exec/stream.hpp), each a bounded ring of
//      in-flight chunks, so up to 2*S transfers overlap compute — the
//      paper's double buffer is the S = 1 configuration, deeper S absorbs
//      uneven chunk sizes.
// The one-time energy-grid staging cost (Table II's largest row) is
// accounted separately, amortized over batches exactly as the paper argues.
//
// Multi-device: the pipelined paths schedule material-tagged chunks across
// N modeled devices (heterogeneous machine.hpp descriptions). The paper's
// symmetric split alpha = 0.62 generalizes to per-device shares
// alpha_d = r_d / sum r_j (DevicePool::shares). Each device x stream is an
// isolated fault domain — `offload.transfer`/`offload.compute` are keyed by
// resil::device_key(device, stream, chunk) — watched by a per-device health
// state machine (exec/health.hpp). Recovery is a deterministic cascade:
//   1. a faulted chunk is retried on its device (RetryPolicy backoff),
//   2. a chunk whose retries exhaust — or that a tripped breaker refuses —
//      is rescheduled onto a device that ended phase 1 accepting work,
//   3. anything still unswept runs on the host path.
// Every tier executes the SAME banked kernel over the same chunk (all
// modeled devices physically run on this host's vector units; degradation
// changes throughput attribution, never arithmetic), and per-chunk results
// are reduced with ordered_sum in global chunk order — so checksums, k-eff
// and tallies are BIT-IDENTICAL to the fault-free run under any seeded
// FaultPlan, including permanently dead devices. tests/resil/ proves this.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/event_queue.hpp"
#include "exec/device_pool.hpp"
#include "exec/kernel_queue.hpp"
#include "exec/machine.hpp"
#include "particle/bank.hpp"
#include "resil/retry.hpp"
#include "xsdata/library.hpp"

namespace vmc::exec {

/// Bytes shipped per banked particle: the SoA kinematic record plus the
/// tracking state a device-resident sweep needs (geometry coordinate stack +
/// RNG seed). The paper's OpenMC bank records are heavier still (~5 KB —
/// full Fortran particle objects); ours are lean, which is documented as a
/// favorable deviation in EXPERIMENTS.md.
std::size_t offload_record_bytes();

class OffloadRuntime {
 public:
  /// Single-device form: the paper's host + one MIC.
  OffloadRuntime(const xs::Library& lib, CostModel host, CostModel device)
      : OffloadRuntime(lib, std::move(host),
                       std::vector<CostModel>{std::move(device)}) {}

  /// Multi-device form: one fault domain per entry of `devices` (must be
  /// non-empty). Heterogeneous specs are fine — chunk shares follow the
  /// modeled rates.
  OffloadRuntime(const xs::Library& lib, CostModel host,
                 std::vector<CostModel> devices, BreakerPolicy breaker = {});

  struct IterationReport {
    // Measured on this machine (real wall time):
    double wall_bank_s = 0.0;         // filling the SoA bank
    double wall_banked_lookup_s = 0.0;  // SIMD sweep over the bank (4-channel)
    double wall_scalar_lookup_s = 0.0;  // history-method control sweep
    double wall_banked_total_s = 0.0;   // tiled SIMD Sigma_t-only sweep
    double wall_scalar_total_s = 0.0;   // scalar Sigma_t-only sweep
    // Real byte counts:
    std::size_t bank_bytes = 0;
    std::size_t grid_bytes = 0;
    // Paper-hardware projections (cost model):
    double model_bank_host_s = 0.0;
    double model_bank_device_s = 0.0;
    double model_transfer_s = 0.0;
    double model_grid_transfer_s = 0.0;
    double model_compute_device_s = 0.0;
    double model_compute_host_s = 0.0;
    // Resilience outcome:
    int retries = 0;        // injected-fault retries that succeeded
    bool degraded = false;  // device sweep fell back to the scalar host path
  };

  /// Bank `n` particles with energies drawn log-uniformly (the post-
  /// initialization energy distribution the micro-benchmark sees), run the
  /// banked and scalar lookup sweeps on `material`, and report all times.
  /// Single-device microbenchmark: uses devices()[0].
  IterationReport run_iteration(int material, std::size_t n,
                                std::uint64_t seed) const;

  /// Figure 3 point: per-iteration cost ratios normalized to the host
  /// generation time for `n` particles under work profile `w`.
  struct RatioPoint {
    std::size_t n = 0;
    double generation_s = 1.0;   // denominator (host)
    double bank_cpu = 0.0;       // banking on the CPU / generation
    double offload = 0.0;        // PCIe bank transfer / generation
    double xs_mic = 0.0;         // banked lookups on the MIC / generation
    double xs_cpu = 0.0;         // scalar lookups on the CPU / generation
  };
  RatioPoint ratios(const WorkProfile& w, std::size_t n) const;

  /// ratios() generalized to the whole pool: the bank is split by the
  /// generalized alpha shares, each device sweeps its slice concurrently, so
  /// the device leg is the slowest device's share (transfers serialize over
  /// the one host PCIe complex).
  RatioPoint pool_ratios(const WorkProfile& w, std::size_t n) const;

  /// Effective per-iteration offload time with double-buffering: transfer of
  /// bank i+1 overlaps compute of bank i, so the pipeline cost is
  /// max(transfer, compute) + one non-overlapped transfer. Single device.
  double pipelined_seconds(std::size_t n_particles, double terms,
                           int n_banks) const;

  /// Depth-S generalization of pipelined_seconds over possibly UNEVEN chunk
  /// sizes (particles per chunk). Models one transfer lane + one compute
  /// lane with a bounded in-flight window of 2*S chunks:
  ///   ft[i] = max(ft[i-1], fc[i-2S]) + t_i   (transfer i waits for a slot)
  ///   fc[i] = max(fc[i-1], ft[i])    + c_i   (compute in order)
  /// For S = 1 and uniform chunks this reduces exactly to
  /// pipelined_seconds; deeper S only helps when chunk sizes are uneven —
  /// the window keeps the compute lane fed across a run of short transfers.
  /// Single device (devices()[0]).
  double pipelined_depth_seconds(std::span<const std::size_t> chunk_particles,
                                 double terms, int streams) const;

  /// Final health + accounting for one modeled device after a pipelined run.
  struct DeviceReport {
    std::string name;            // DeviceSpec name
    HealthState final_state = HealthState::healthy;
    int chunks_ok = 0;           // chunks this device completed
    int chunks_failed = 0;       // chunks whose retries exhausted here
    int chunks_skipped = 0;      // chunks the breaker refused
    int retries = 0;             // transient faults absorbed by retries
    int trips = 0;               // breaker open events
    int probes = 0;              // half-open probes dispatched
    int steals_in = 0;           // chunks rescheduled TO this device
    int streams = 1;             // stream depth S this run drove the device at
    int inflight_high_water = 0; // most chunks in flight at once on it
  };

  /// REAL double-buffered execution across the device pool. Returns the
  /// summed Sigma_t of every particle (for verification against the
  /// unpipelined sweep) and reports the wall time. The checksum is invariant
  /// — bitwise — under any armed FaultPlan: see the cascade contract above.
  struct PipelineRun {
    double checksum = 0.0;
    double wall_s = 0.0;
    int n_stages = 0;
    // Resilience outcome, cascade tier by cascade tier: faulted attempts
    // that eventually succeeded on the owning device count as retries;
    // chunks that had to move to a peer device count as rescheduled; chunks
    // swept by the host floor count as degraded.
    int retries = 0;
    int rescheduled_stages = 0;
    int degraded_stages = 0;
    int stream_depth = 1;         // S the run executed with
    int inflight_high_water = 0;  // max over devices
    std::vector<DeviceReport> devices;
    bool degraded() const { return degraded_stages > 0; }
  };
  PipelineRun run_pipelined(int material, std::span<const double> energies,
                            int n_banks) const;

  /// Double-buffered sweep fed from the event scheduler's COMPACTED bank:
  /// `bank` holds only live particles, already material-sorted by the
  /// compacting queue (particle::SoABank::append_compacted), and `runs`
  /// delimits its contiguous same-material segments. Each run is split into
  /// pipeline stages so transfer bytes and device sweeps scale with the live
  /// population, never the original bank size. Fault points, retry policy,
  /// breaker cascade, and degradation behave exactly as in run_pipelined.
  PipelineRun run_pipelined_queues(const particle::SoABank& bank,
                                   std::span<const core::MaterialRun> runs,
                                   int n_banks) const;

  /// Incremental form: the event scheduler hands its material runs straight
  /// to the per-event-type kernel queues (EventQueues::hand_off_runs), so no
  /// intermediate chunk vector is materialized. With the persistent
  /// scheduler enabled and EVERY device breaker tripped at entry, this
  /// short-circuits to the host floor before any device staging happens —
  /// the all-dead path skips the wasted transfers entirely (checksum still
  /// bit-identical: same chunk split, same kernel, same ordered reduction).
  PipelineRun run_pipelined_queues(const particle::SoABank& bank,
                                   const core::EventQueues& queues,
                                   int n_banks) const;

  const CostModel& host() const { return host_; }
  /// First (or only) device — the legacy single-device accessor.
  const CostModel& device() const { return devices_.front(); }
  const std::vector<CostModel>& devices() const { return devices_; }
  std::size_t device_count() const { return devices_.size(); }

  /// Streams per modeled device (depth S >= 1, default 1). Each stream holds
  /// a ring of Stream::kRingDepth in-flight chunks, so a device keeps up to
  /// 2*S chunks outstanding. Checksums are bit-identical across depths: the
  /// chunk split and the ordered reduction never depend on S.
  int stream_depth() const { return stream_depth_; }
  void set_stream_depth(int streams);

  /// Persistent scheduler: keep one DevicePool — breaker states, lifetime
  /// counters — alive across pipelined runs instead of building a fresh pool
  /// per run. Off by default so independent runs stay independent (the chaos
  /// suite's contract); turn it on to model a long-lived service where a
  /// device tripped in run i is still tripped entering run i+1. Per-run
  /// reports and metrics always cover the run alone (deltas), either way.
  bool persistent_scheduler() const { return persistent_; }
  void set_persistent_scheduler(bool on) {
    persistent_ = on;
    if (!on) persistent_pool_.reset();
  }

  /// Retry schedule for injected/transient offload faults. Default: 3
  /// retries starting at 1 µs backoff, doubling.
  const resil::RetryPolicy& retry_policy() const { return retry_; }
  void set_retry_policy(const resil::RetryPolicy& p) { retry_ = p; }

  /// Circuit-breaker thresholds shared by every device's HealthMonitor.
  /// Fresh monitors are built per pipelined run — runs are independent —
  /// unless set_persistent_scheduler(true) carries them across runs.
  const BreakerPolicy& breaker_policy() const { return breaker_; }
  void set_breaker_policy(const BreakerPolicy& p) {
    p.validate();
    breaker_ = p;
  }

  /// Grid-search tier for every lookup sweep this runtime runs (hash by
  /// default; binary is the ablation baseline). Results are bit-identical
  /// across tiers, so checksums and kernel-agreement bounds are unaffected.
  const xs::XsLookupOptions& lookup_options() const { return lookup_; }
  void set_lookup_options(const xs::XsLookupOptions& o) { lookup_ = o; }

 private:
  /// One pipeline stage's worth of work: a same-material span of the source
  /// energies. run_pipelined uses equal splits of a single material;
  /// run_pipelined_queues splits each compacted material run.
  struct Chunk {
    int material;
    std::size_t begin;
    std::size_t end;
  };
  PipelineRun pipeline_chunks(std::span<const double> energies,
                              std::span<const Chunk> chunks) const;
  /// Drain a fed KernelQueueSet with pop_fair into the global chunk order
  /// (ordinals assigned at push time keep the reduction order), record the
  /// queue-occupancy histogram, then run pipeline_chunks.
  PipelineRun pipeline_queue_set(std::span<const double> energies,
                                 KernelQueueSet& queues) const;
  /// The all-dead short-circuit: sweep every chunk on the host floor without
  /// touching devices, streams, or fault points.
  PipelineRun host_floor_all(std::span<const double> energies,
                             std::span<const Chunk> chunks,
                             DevicePool& pool) const;
  /// The run's pool: the persistent one (created on first use) or a fresh
  /// per-run pool owned by `fresh`.
  DevicePool& acquire_pool(std::unique_ptr<DevicePool>& fresh) const;

  const xs::Library& lib_;
  CostModel host_;
  std::vector<CostModel> devices_;
  BreakerPolicy breaker_;
  resil::RetryPolicy retry_;
  xs::XsLookupOptions lookup_;
  int stream_depth_ = 1;
  bool persistent_ = false;
  mutable std::unique_ptr<DevicePool> persistent_pool_;
};

}  // namespace vmc::exec
