#include "hm/hm_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include "rng/stream.hpp"

namespace vmc::hm {

namespace {

// Pin-cell dimensions (cm) from the H.M. specification.
constexpr double kFuelRadius = 0.4096;
constexpr double kCladRadius = 0.475;
constexpr double kGuideInnerRadius = 0.561;
constexpr double kGuideOuterRadius = 0.612;
constexpr double kPinPitch = 1.26;
constexpr double kAssemblyPitch = 21.42;  // 17 * 1.26
constexpr int kCoreMap = 19;              // 19x19 assembly positions
constexpr double kCoreHalfWidth = 0.5 * kCoreMap * kAssemblyPitch;  // 203.49
constexpr double kFuelHalfHeight = 183.0;  // 366 cm active fuel
constexpr double kReflectorHeight = 36.0;

/// Scale a SynthParams grid size.
void scale_grid(xs::SynthParams& p, double s) {
  p.grid_points = std::max(64, static_cast<int>(p.grid_points * s));
}

/// Doppler-broaden the synthetic resonances: the Doppler width grows with
/// sqrt(T). At 300 K the factor is exactly 1.0, so the default library is
/// bit-identical to the historical (temperature-less) one.
void apply_temperature(xs::SynthParams& p, double temperature_K) {
  p.gamma_mean *= std::sqrt(temperature_K / 300.0);
}

/// Per-model-option tuning applied to every nuclide in the library.
void tune(xs::SynthParams& p, const ModelOptions& opt) {
  scale_grid(p, opt.grid_scale);
  apply_temperature(p, opt.temperature_K);
}

}  // namespace

int fuel_nuclide_count(FuelSize size) {
  return size == FuelSize::small ? 34 : 320;
}

bool is_guide_tube(int ix, int iy) {
  // Standard Westinghouse 17x17 layout: 24 guide tubes + the central
  // instrumentation tube.
  static constexpr std::array<std::array<int, 2>, 25> kTubes = {{
      {5, 2},  {8, 2},  {11, 2},
      {3, 3},  {13, 3},
      {2, 5},  {5, 5},  {8, 5},  {11, 5}, {14, 5},
      {2, 8},  {5, 8},  {8, 8},  {11, 8}, {14, 8},
      {2, 11}, {5, 11}, {8, 11}, {11, 11}, {14, 11},
      {3, 13}, {13, 13},
      {5, 14}, {8, 14}, {11, 14},
  }};
  for (const auto& t : kTubes) {
    if (t[0] == ix && t[1] == iy) return true;
  }
  return false;
}

bool is_fuel_assembly(int ix, int iy) {
  // The 241 positions nearest the core axis, deterministic tie-break.
  static const auto map = [] {
    struct Pos {
      int ix, iy;
      double r2;
    };
    std::vector<Pos> all;
    const double c = (kCoreMap - 1) / 2.0;
    for (int iy2 = 0; iy2 < kCoreMap; ++iy2) {
      for (int ix2 = 0; ix2 < kCoreMap; ++ix2) {
        const double dx = ix2 - c;
        const double dy = iy2 - c;
        all.push_back({ix2, iy2, dx * dx + dy * dy});
      }
    }
    std::sort(all.begin(), all.end(), [](const Pos& a, const Pos& b) {
      if (a.r2 != b.r2) return a.r2 < b.r2;
      if (a.iy != b.iy) return a.iy < b.iy;
      return a.ix < b.ix;
    });
    std::array<bool, kCoreMap * kCoreMap> m{};
    for (int k = 0; k < 241; ++k) {
      m[static_cast<std::size_t>(all[static_cast<std::size_t>(k)].iy * kCoreMap +
                                 all[static_cast<std::size_t>(k)].ix)] = true;
    }
    return m;
  }();
  return map[static_cast<std::size_t>(iy * kCoreMap + ix)];
}

namespace {

struct MaterialIds {
  int fuel, water, clad;
};

MaterialIds build_materials(xs::Library& lib, const ModelOptions& opt) {
  rng::Stream ds(0xD05EULL);  // deterministic density jitter

  // --- shared / structural nuclides --------------------------------------
  auto o16p = xs::SynthParams::light_like(15.86);
  o16p.with_thermal = false;
  tune(o16p, opt);
  const int o16 = lib.add_nuclide(xs::make_synthetic_nuclide("O16", 16, o16p));

  auto h1p = xs::SynthParams::light_like(0.9992);
  h1p.with_thermal = opt.with_thermal;
  tune(h1p, opt);
  const int h1 = lib.add_nuclide(xs::make_synthetic_nuclide("H1", 1, h1p));

  auto b10p = xs::SynthParams::light_like(9.93);
  b10p.with_thermal = false;
  b10p.sigma_a_thermal = 3837.0;  // the strong 1/v boron absorber
  tune(b10p, opt);
  const int b10 = lib.add_nuclide(xs::make_synthetic_nuclide("B10", 10, b10p));

  auto zrp = xs::SynthParams::fission_product_like();
  zrp.awr = 90.44;
  zrp.sigma_a_thermal = 0.19;  // zirconium is nearly transparent
  zrp.sigma0_mean = 30.0;
  zrp.n_resonances = 60;
  zrp.with_urr = opt.with_urr;
  tune(zrp, opt);
  const int zr = lib.add_nuclide(xs::make_synthetic_nuclide("Zr-nat", 40, zrp));

  // --- fuel nuclides -------------------------------------------------------
  xs::Material fuel;
  fuel.name = opt.fuel == FuelSize::small ? "HM-small-fuel" : "HM-large-fuel";

  auto u238p = xs::SynthParams::u238_like();
  u238p.with_urr = opt.with_urr;
  tune(u238p, opt);
  const int u238 =
      lib.add_nuclide(xs::make_synthetic_nuclide("U238", 92238, u238p));

  auto u235p = xs::SynthParams::u235_like();
  u235p.with_urr = opt.with_urr;
  tune(u235p, opt);
  const int u235 =
      lib.add_nuclide(xs::make_synthetic_nuclide("U235", 92235, u235p));

  fuel.add(u238, 2.21e-2);
  fuel.add(u235, 1.25e-3);  // ~5.5 w/o enrichment
  fuel.add(o16, 4.58e-2);

  const int n_fuel = opt.fuel_nuclides > 0 ? std::max(3, opt.fuel_nuclides)
                                           : fuel_nuclide_count(opt.fuel);
  const int extra = n_fuel - 3;
  // A handful of higher-density actinides (some fissionable), the remainder
  // fission products with trace densities.
  const int n_actinides = std::min(8, extra);
  for (int i = 0; i < n_actinides; ++i) {
    auto p = xs::SynthParams::u238_like();
    p.fissionable = (i % 2 == 0);
    p.fission_fraction = p.fissionable ? 0.6 : 0.0;
    p.n_resonances = 200;
    p.grid_points = 2500;
    p.with_urr = opt.with_urr;
    tune(p, opt);
    const int id = lib.add_nuclide(xs::make_synthetic_nuclide(
        "actinide-" + std::to_string(i), 93000 + i, p));
    fuel.add(id, 1.0e-5 * std::exp(1.5 * (ds.next() - 0.5)));
  }
  for (int i = 0; i < extra - n_actinides; ++i) {
    auto p = xs::SynthParams::fission_product_like();
    p.awr = 80.0 + 80.0 * ds.next();
    p.with_urr = opt.with_urr;
    tune(p, opt);
    const int id = lib.add_nuclide(xs::make_synthetic_nuclide(
        "fp-" + std::to_string(i), 50000 + i, p));
    fuel.add(id, 1.0e-6 * std::exp(3.0 * (ds.next() - 0.5)));
  }

  xs::Material water;
  water.name = "borated-water";
  water.add(h1, 6.69e-2);
  water.add(o16, 3.34e-2);
  water.add(b10, 4.0e-6);

  xs::Material clad;
  clad.name = "zircaloy";
  clad.add(zr, 4.23e-2);

  MaterialIds ids;
  ids.fuel = lib.add_material(std::move(fuel));
  ids.water = lib.add_material(std::move(water));
  ids.clad = lib.add_material(std::move(clad));
  return ids;
}

}  // namespace

xs::Library build_library(const ModelOptions& opt, int* fuel_material) {
  xs::Library lib(opt.max_union_points);
  const MaterialIds ids = build_materials(lib, opt);
  lib.set_hash_options(opt.hash);
  lib.finalize();
  if (fuel_material != nullptr) *fuel_material = ids.fuel;
  return lib;
}

Model build_model(const ModelOptions& opt) {
  Model m;
  m.library = xs::Library(opt.max_union_points);
  const MaterialIds ids = build_materials(m.library, opt);
  m.library.set_hash_options(opt.hash);
  m.library.finalize();
  m.fuel_material = ids.fuel;
  m.water_material = ids.water;
  m.clad_material = ids.clad;

  geom::Geometry& g = m.geometry;

  // --- pin universes --------------------------------------------------------
  const int s_fuel = g.add_surface(geom::Surface::z_cylinder(0, 0, kFuelRadius));
  const int s_clad = g.add_surface(geom::Surface::z_cylinder(0, 0, kCladRadius));
  const int s_gt_in =
      g.add_surface(geom::Surface::z_cylinder(0, 0, kGuideInnerRadius));
  const int s_gt_out =
      g.add_surface(geom::Surface::z_cylinder(0, 0, kGuideOuterRadius));

  const auto mat_cell = [&](std::vector<geom::HalfSpace> region, int mat) {
    geom::Cell c;
    c.region = std::move(region);
    c.fill_type = geom::FillType::material;
    c.fill = mat;
    return g.add_cell(std::move(c));
  };

  geom::Universe u_fuel_pin;
  u_fuel_pin.cells = {
      mat_cell({{s_fuel, false}}, ids.fuel),
      mat_cell({{s_fuel, true}, {s_clad, false}}, ids.clad),
      mat_cell({{s_clad, true}}, ids.water),
  };
  const int uid_fuel_pin = g.add_universe(std::move(u_fuel_pin));

  geom::Universe u_guide;
  u_guide.cells = {
      mat_cell({{s_gt_in, false}}, ids.water),
      mat_cell({{s_gt_in, true}, {s_gt_out, false}}, ids.clad),
      mat_cell({{s_gt_out, true}}, ids.water),
  };
  const int uid_guide = g.add_universe(std::move(u_guide));

  geom::Universe u_water;
  u_water.cells = {mat_cell({}, ids.water)};
  const int uid_water = g.add_universe(std::move(u_water));

  // --- assembly: 17x17 pin lattice ------------------------------------------
  geom::Lattice pin_lattice;
  pin_lattice.nx = pin_lattice.ny = 17;
  pin_lattice.pitch = kPinPitch;
  pin_lattice.x0 = pin_lattice.y0 = -8.5 * kPinPitch;
  pin_lattice.outer = uid_water;
  pin_lattice.universe.resize(17 * 17);
  for (int iy = 0; iy < 17; ++iy) {
    for (int ix = 0; ix < 17; ++ix) {
      pin_lattice.universe[static_cast<std::size_t>(iy * 17 + ix)] =
          is_guide_tube(ix, iy) ? uid_guide : uid_fuel_pin;
    }
  }
  const int lat_assembly = g.add_lattice(std::move(pin_lattice));

  geom::Cell assembly_cell;
  assembly_cell.fill_type = geom::FillType::lattice;
  assembly_cell.fill = lat_assembly;
  geom::Universe u_assembly;
  u_assembly.cells = {g.add_cell(std::move(assembly_cell))};
  const int uid_assembly = g.add_universe(std::move(u_assembly));

  if (opt.full_core) {
    // --- core: 19x19 assembly lattice ---------------------------------------
    geom::Lattice core_lattice;
    core_lattice.nx = core_lattice.ny = kCoreMap;
    core_lattice.pitch = kAssemblyPitch;
    core_lattice.x0 = core_lattice.y0 = -kCoreHalfWidth;
    core_lattice.outer = uid_water;
    core_lattice.universe.resize(kCoreMap * kCoreMap);
    for (int iy = 0; iy < kCoreMap; ++iy) {
      for (int ix = 0; ix < kCoreMap; ++ix) {
        core_lattice.universe[static_cast<std::size_t>(iy * kCoreMap + ix)] =
            is_fuel_assembly(ix, iy) ? uid_assembly : uid_water;
      }
    }
    const int lat_core = g.add_lattice(std::move(core_lattice));

    // --- root ---------------------------------------------------------------
    const double w = kCoreHalfWidth;
    const double zt = kFuelHalfHeight + kReflectorHeight;
    const int sx_lo = g.add_surface(geom::Surface::x_plane(-w));
    const int sx_hi = g.add_surface(geom::Surface::x_plane(w));
    const int sy_lo = g.add_surface(geom::Surface::y_plane(-w));
    const int sy_hi = g.add_surface(geom::Surface::y_plane(w));
    const int sz_lo = g.add_surface(geom::Surface::z_plane(-kFuelHalfHeight));
    const int sz_hi = g.add_surface(geom::Surface::z_plane(kFuelHalfHeight));
    const int sz_bot = g.add_surface(geom::Surface::z_plane(-zt));
    const int sz_top = g.add_surface(geom::Surface::z_plane(zt));
    for (int s : {sx_lo, sy_lo, sz_bot}) {
      g.surface(s).set_bc(geom::BoundaryCondition::vacuum);
    }
    for (int s : {sx_hi, sy_hi, sz_top}) {
      g.surface(s).set_bc(geom::BoundaryCondition::vacuum);
    }

    const std::vector<geom::HalfSpace> xy_box = {
        {sx_lo, true}, {sx_hi, false}, {sy_lo, true}, {sy_hi, false}};

    geom::Cell core;
    core.region = xy_box;
    core.region.push_back({sz_lo, true});
    core.region.push_back({sz_hi, false});
    core.fill_type = geom::FillType::lattice;
    core.fill = lat_core;

    geom::Universe root;
    root.cells = {g.add_cell(std::move(core))};
    // Axial water reflectors.
    {
      std::vector<geom::HalfSpace> top = xy_box;
      top.push_back({sz_hi, true});
      top.push_back({sz_top, false});
      root.cells.push_back(mat_cell(std::move(top), ids.water));
      std::vector<geom::HalfSpace> bot = xy_box;
      bot.push_back({sz_bot, true});
      bot.push_back({sz_lo, false});
      root.cells.push_back(mat_cell(std::move(bot), ids.water));
    }
    g.set_root(g.add_universe(std::move(root)));

    m.source_lo = {-w, -w, -kFuelHalfHeight};
    m.source_hi = {w, w, kFuelHalfHeight};
  } else {
    // Single assembly, reflective sides: an infinite lattice configuration.
    const double w = 0.5 * kAssemblyPitch;
    const double h = 50.0;
    const int sx_lo = g.add_surface(geom::Surface::x_plane(-w));
    const int sx_hi = g.add_surface(geom::Surface::x_plane(w));
    const int sy_lo = g.add_surface(geom::Surface::y_plane(-w));
    const int sy_hi = g.add_surface(geom::Surface::y_plane(w));
    const int sz_lo = g.add_surface(geom::Surface::z_plane(-h));
    const int sz_hi = g.add_surface(geom::Surface::z_plane(h));
    for (int s : {sx_lo, sx_hi, sy_lo, sy_hi, sz_lo, sz_hi}) {
      g.surface(s).set_bc(geom::BoundaryCondition::reflective);
    }
    geom::Cell root_cell;
    root_cell.region = {{sx_lo, true}, {sx_hi, false}, {sy_lo, true},
                        {sy_hi, false}, {sz_lo, true}, {sz_hi, false}};
    root_cell.fill_type = geom::FillType::universe;
    root_cell.fill = uid_assembly;
    geom::Universe root;
    root.cells = {g.add_cell(std::move(root_cell))};
    g.set_root(g.add_universe(std::move(root)));

    m.source_lo = {-w, -w, -h};
    m.source_hi = {w, w, h};
  }

  return m;
}

}  // namespace vmc::hm
