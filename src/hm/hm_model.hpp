// Hoogenboom-Martin full-core PWR performance benchmark [Hoogenboom, Martin
// & Petrovic 2009] — the input model of every experiment in the paper.
//
//  * 241 identical fuel assemblies, each 21.42 x 21.42 cm, arranged in a
//    19x19 core map (positions closest to the core axis), water elsewhere.
//  * Each assembly: a 17x17 pin lattice (pitch 1.26 cm) with 24 control-rod
//    guide tubes + 1 instrumentation tube at the standard PWR positions.
//  * Fuel pin: fuel cylinder r = 0.4096 cm inside natural-zirconium cladding
//    to r = 0.475 cm, water outside. Guide tube: water inside r = 0.561 cm,
//    zirconium to r = 0.612 cm.
//  * Active fuel height 366 cm, 36 cm axial water reflectors, vacuum
//    boundaries.
//  * "H.M. Small": 34 fuel nuclides (U + O + actinides + key fission
//    products). "H.M. Large": 320 fuel nuclides (the high-fidelity fuel).
//
// Nuclide data is synthetic (DESIGN.md §2), with grid sizes scaled by
// `grid_scale` so tests, examples, and full benchmark runs can trade memory
// for fidelity without changing the access pattern.
#pragma once

#include "geom/geometry.hpp"
#include "xsdata/library.hpp"
#include "xsdata/synth.hpp"

namespace vmc::hm {

enum class FuelSize : unsigned char { small, large };

struct ModelOptions {
  FuelSize fuel = FuelSize::small;
  /// Override the fuel-nuclide count (0 = the FuelSize default, 34/320).
  /// Minimum effective count is 3 (U238 + U235 + O16); the serving layer
  /// exposes this as the job-spec `nuclides` axis.
  int fuel_nuclides = 0;
  /// Multiplier on per-nuclide grid sizes (1.0 = the defaults in
  /// xs::SynthParams; benchmarks use >= 1, unit tests < 1).
  double grid_scale = 1.0;
  /// Cap on the unionized grid (bounds the imap memory; see Library).
  std::size_t max_union_points = 1u << 17;
  bool with_urr = true;
  bool with_thermal = true;
  /// Hash-index shape built by Library::finalize (bins/decade, per-nuclide
  /// start table). The serve cache derives `nuclide_index` from the job's
  /// grid-search tier so cached libraries carry exactly the index they need.
  xs::HashGridOptions hash{};
  /// Fuel temperature (K). Doppler-broadens the synthetic resonances by
  /// widening each nuclide's Gaussian resonance width with sqrt(T/300)
  /// (the classic Doppler-width scaling). 300 K reproduces the historical
  /// library bit-for-bit (the scale factor is exactly 1.0).
  double temperature_K = 300.0;
  /// true: the full 241-assembly core with vacuum boundaries.
  /// false: one assembly with reflective sides (fast infinite-lattice
  /// configuration for tests).
  bool full_core = true;
};

struct Model {
  xs::Library library;
  geom::Geometry geometry;
  int fuel_material = -1;
  int water_material = -1;
  int clad_material = -1;
  /// Bounding box of the fuel region (initial-source sampling box).
  geom::Position source_lo;
  geom::Position source_hi;

  int n_fuel_nuclides() const {
    return static_cast<int>(library.material(fuel_material).size());
  }
};

/// Number of fuel nuclides for each model size (34 / 320, per the paper).
int fuel_nuclide_count(FuelSize size);

/// Build the complete model (library finalized, geometry ready to track).
Model build_model(const ModelOptions& opt);

/// Build just the material library (used by the lookup micro-benchmarks,
/// which need no geometry).
xs::Library build_library(const ModelOptions& opt, int* fuel_material = nullptr);

/// The 17x17 assembly map: true where a guide/instrumentation tube sits
/// (the standard Westinghouse 24+1 layout).
bool is_guide_tube(int ix, int iy);

/// The 19x19 core map: true where one of the 241 fuel assemblies sits.
bool is_fuel_assembly(int ix, int iy);

}  // namespace vmc::hm
