// In-process message-passing library — VectorMC's MPI substitute.
//
// The paper's symmetric-mode experiments run OpenMC with MPI across host and
// MIC ranks. Real MPI is unavailable offline, so this module provides the
// subset OpenMC's eigenvalue loop needs — point-to-point send/recv, barrier,
// allreduce, broadcast, gather — with ranks mapped to std::threads in one
// process. Semantics follow the MPI standard's message-ordering guarantees
// (per (source, dest, tag) FIFO). The distributed-scaling *figures* combine
// this (for correctness at small rank counts) with comm/cluster_model.hpp
// (for projected cost at Stampede scale).
//
// Resilience: ranks can die (Comm::die, driven by the `comm.rank_death`
// fault point in exec/distributed.cpp). The collectives are dead-aware —
// barrier counts only live ranks, allreduce/gather skip dead contributions,
// bcast skips dead destinations — so survivors never hang on a dead peer,
// and the per-generation health check in the distributed driver can observe
// deaths (Comm::dead_ranks) and rebalance. Blocking recv from a dead rank
// throws comm::Error instead of hanging; recv_for adds a timeout for links
// that stall without a detected death.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace vmc::comm {

/// Communication failure: empty/malformed message, recv timeout, peer death,
/// or an injected `comm.send` fault. What MPI reports through error codes,
/// we report through this type.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class World;

/// Per-rank communicator handle (analogous to MPI_COMM_WORLD seen from one
/// rank). Obtained inside World::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Blocking typed send/recv (T must be trivially copyable).
  template <class T>
  void send(int dest, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               reinterpret_cast<const std::byte*>(data.data()),
               data.size() * sizeof(T));
  }
  template <class T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    return unpack<T>(recv_bytes(src, tag));
  }

  /// recv with a deadline: throws comm::Error if no message from
  /// (src, tag) arrives within `timeout` — a stalled link becomes a
  /// diagnosable failure instead of a hung campaign.
  template <class T>
  std::vector<T> recv_for(int src, int tag,
                          std::chrono::milliseconds timeout) {
    static_assert(std::is_trivially_copyable_v<T>);
    return unpack<T>(recv_bytes_for(src, tag, timeout));
  }

  /// Scalar convenience wrappers.
  template <class T>
  void send_value(int dest, int tag, const T& v) {
    send(dest, tag, std::vector<T>{v});
  }
  template <class T>
  T recv_value(int src, int tag) {
    const std::vector<T> v = recv<T>(src, tag);
    if (v.empty()) {
      throw Error("recv_value: empty message from rank " +
                  std::to_string(src) + " tag " + std::to_string(tag) +
                  " at rank " + std::to_string(rank_) +
                  " (expected exactly one value)");
    }
    return v[0];
  }

  /// All live ranks wait until everyone arrives.
  void barrier();

  /// Element-wise sum across live ranks; every rank gets the result.
  std::vector<double> allreduce_sum(const std::vector<double>& v);
  double allreduce_sum(double v);
  std::uint64_t allreduce_sum(std::uint64_t v);

  /// Element-wise max across live ranks.
  double allreduce_max(double v);

  /// Root's data replaces everyone's.
  template <class T>
  void bcast(std::vector<T>& data, int root);

  /// Root receives the concatenation of all live ranks' vectors (rank
  /// order); non-roots receive an empty vector.
  template <class T>
  std::vector<T> gather(const std::vector<T>& mine, int root);

  // --- failure model --------------------------------------------------------

  /// This rank dies: it is removed from every collective from now on and its
  /// reduction slot is cleared. The caller must return from its World::run
  /// function immediately after (a dead rank must not communicate again).
  void die();

  /// True if `r` has not died.
  bool alive(int r) const;

  /// Ranks that have died so far, ascending. Survivors use this at a sync
  /// point (after a barrier) as the per-generation health check.
  std::vector<int> dead_ranks() const;

 private:
  friend class World;
  Comm(World& w, int rank, int size) : world_(w), rank_(rank), size_(size) {}

  template <class T>
  static std::vector<T> unpack(const std::vector<std::byte>& raw) {
    std::vector<T> out(raw.size() / sizeof(T));
    // An empty message yields a null raw.data(); memcpy's pointer
    // arguments are declared nonnull even for n == 0.
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  void send_bytes(int dest, int tag, const std::byte* p, std::size_t n);
  std::vector<std::byte> recv_bytes(int src, int tag);
  std::vector<std::byte> recv_bytes_for(int src, int tag,
                                        std::chrono::milliseconds timeout);

  World& world_;
  int rank_;
  int size_;
};

/// Owns the shared state for `n_ranks` communicating threads.
class World {
 public:
  explicit World(int n_ranks);

  int size() const { return size_; }

  /// Spawn `size()` threads, each running fn with its own Comm. Returns when
  /// all ranks finish. Exceptions from ranks are rethrown (first wins).
  void run(const std::function<void(Comm&)>& fn);

 private:
  friend class Comm;
  struct Mailbox {
    std::deque<std::vector<std::byte>> messages;
  };

  // All require mu_ held.
  int alive_count_locked() const { return alive_count_; }
  void mark_dead_locked(int rank);

  int size_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // (src * size + dest) -> tag -> FIFO
  std::vector<std::map<int, Mailbox>> mail_;

  // Failure model: dead_[r] set once by Comm::die, never cleared.
  std::vector<char> dead_;
  int alive_count_ = 0;

  // Barrier state (generation-counting, dead-aware).
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Collective scratch: one slot per rank.
  std::vector<std::vector<double>> reduce_slots_;
  std::vector<std::vector<std::byte>> coll_slots_;
};

// --- template bodies that need World internals ------------------------------

template <class T>
void Comm::bcast(std::vector<T>& data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r) {
      if (r != root && alive(r)) send(r, /*tag=*/-2, data);
    }
  } else {
    data = recv<T>(root, /*tag=*/-2);
  }
}

template <class T>
std::vector<T> Comm::gather(const std::vector<T>& mine, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank_ == root) {
    std::vector<T> all;
    for (int r = 0; r < size_; ++r) {
      if (r == root) {
        all.insert(all.end(), mine.begin(), mine.end());
      } else if (alive(r)) {
        const std::vector<T> part = recv<T>(r, /*tag=*/-3);
        all.insert(all.end(), part.begin(), part.end());
      }
    }
    return all;
  }
  send(root, /*tag=*/-3, mine);
  return {};
}

}  // namespace vmc::comm
