// In-process message-passing library — VectorMC's MPI substitute.
//
// The paper's symmetric-mode experiments run OpenMC with MPI across host and
// MIC ranks. Real MPI is unavailable offline, so this module provides the
// subset OpenMC's eigenvalue loop needs — point-to-point send/recv, barrier,
// allreduce, broadcast, gather — with ranks mapped to std::threads in one
// process. Semantics follow the MPI standard's message-ordering guarantees
// (per (source, dest, tag) FIFO). The distributed-scaling *figures* combine
// this (for correctness at small rank counts) with comm/cluster_model.hpp
// (for projected cost at Stampede scale).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <type_traits>
#include <vector>

namespace vmc::comm {

class World;

/// Per-rank communicator handle (analogous to MPI_COMM_WORLD seen from one
/// rank). Obtained inside World::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Blocking typed send/recv (T must be trivially copyable).
  template <class T>
  void send(int dest, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               reinterpret_cast<const std::byte*>(data.data()),
               data.size() * sizeof(T));
  }
  template <class T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> raw = recv_bytes(src, tag);
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Scalar convenience wrappers.
  template <class T>
  void send_value(int dest, int tag, const T& v) {
    send(dest, tag, std::vector<T>{v});
  }
  template <class T>
  T recv_value(int src, int tag) {
    return recv<T>(src, tag).at(0);
  }

  /// All ranks wait until everyone arrives.
  void barrier();

  /// Element-wise sum across ranks; every rank gets the result.
  std::vector<double> allreduce_sum(const std::vector<double>& v);
  double allreduce_sum(double v);
  std::uint64_t allreduce_sum(std::uint64_t v);

  /// Element-wise max across ranks.
  double allreduce_max(double v);

  /// Root's data replaces everyone's.
  template <class T>
  void bcast(std::vector<T>& data, int root);

  /// Root receives the concatenation of all ranks' vectors (rank order);
  /// non-roots receive an empty vector.
  template <class T>
  std::vector<T> gather(const std::vector<T>& mine, int root);

 private:
  friend class World;
  Comm(World& w, int rank, int size) : world_(w), rank_(rank), size_(size) {}

  void send_bytes(int dest, int tag, const std::byte* p, std::size_t n);
  std::vector<std::byte> recv_bytes(int src, int tag);

  World& world_;
  int rank_;
  int size_;
};

/// Owns the shared state for `n_ranks` communicating threads.
class World {
 public:
  explicit World(int n_ranks);

  int size() const { return size_; }

  /// Spawn `size()` threads, each running fn with its own Comm. Returns when
  /// all ranks finish. Exceptions from ranks are rethrown (first wins).
  void run(const std::function<void(Comm&)>& fn);

 private:
  friend class Comm;
  struct Mailbox {
    std::deque<std::vector<std::byte>> messages;
  };

  int size_;
  std::mutex mu_;
  std::condition_variable cv_;
  // (src * size + dest) -> tag -> FIFO
  std::vector<std::map<int, Mailbox>> mail_;

  // Barrier state (generation-counting).
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Collective scratch: one slot per rank.
  std::vector<std::vector<double>> reduce_slots_;
  std::vector<std::vector<std::byte>> coll_slots_;
};

// --- template bodies that need World internals ------------------------------

template <class T>
void Comm::bcast(std::vector<T>& data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r) {
      if (r != root) send(r, /*tag=*/-2, data);
    }
  } else {
    data = recv<T>(root, /*tag=*/-2);
  }
}

template <class T>
std::vector<T> Comm::gather(const std::vector<T>& mine, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank_ == root) {
    std::vector<T> all;
    for (int r = 0; r < size_; ++r) {
      if (r == root) {
        all.insert(all.end(), mine.begin(), mine.end());
      } else {
        const std::vector<T> part = recv<T>(r, /*tag=*/-3);
        all.insert(all.end(), part.begin(), part.end());
      }
    }
    return all;
  }
  send(root, /*tag=*/-3, mine);
  return {};
}

}  // namespace vmc::comm
