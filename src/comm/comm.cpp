#include "comm/comm.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resil/fault.hpp"

namespace vmc::comm {

World::World(int n_ranks) : size_(n_ranks) {
  if (n_ranks < 1) throw std::invalid_argument("World needs >= 1 rank");
  mail_.resize(static_cast<std::size_t>(size_) * static_cast<std::size_t>(size_));
  dead_.assign(static_cast<std::size_t>(size_), 0);
  alive_count_ = size_;
  reduce_slots_.resize(static_cast<std::size_t>(size_));
  coll_slots_.resize(static_cast<std::size_t>(size_));
}

void World::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::exception_ptr first_error;
  std::mutex err_mu;

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &fn, &first_error, &err_mu] {
      Comm c(*this, r, size_);
      try {
        fn(c);
      } catch (...) {
        {
          std::lock_guard lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // A rank that died by exception is dead to its peers too: without
        // this, survivors blocked on its messages or barriers would hang
        // until their timeouts instead of failing fast.
        {
          std::lock_guard lk(mu_);
          mark_dead_locked(r);
        }
        cv_.notify_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void World::mark_dead_locked(int rank) {
  if (dead_[static_cast<std::size_t>(rank)] != 0) return;
  dead_[static_cast<std::size_t>(rank)] = 1;
  --alive_count_;
  static const obs::Counter c_dead = obs::metrics().counter(
      "vmc_comm_dead_ranks_total", {}, "Ranks marked dead by the runtime");
  c_dead.inc();
  obs::tracer().instant("rank_death", "comm");
  // A dead rank's stale reduction slot must never leak into a later
  // collective among the survivors.
  reduce_slots_[static_cast<std::size_t>(rank)].clear();
  coll_slots_[static_cast<std::size_t>(rank)].clear();
  // If every remaining live rank is already parked in the barrier, the
  // death completes it — otherwise the survivors would wait forever for a
  // rank that will never arrive.
  if (alive_count_ > 0 && barrier_waiting_ == alive_count_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
  }
}

void Comm::die() {
  {
    std::lock_guard lk(world_.mu_);
    world_.mark_dead_locked(rank_);
  }
  world_.cv_.notify_all();
}

bool Comm::alive(int r) const {
  if (r < 0 || r >= size_) return false;
  std::lock_guard lk(world_.mu_);
  return world_.dead_[static_cast<std::size_t>(r)] == 0;
}

std::vector<int> Comm::dead_ranks() const {
  std::lock_guard lk(world_.mu_);
  std::vector<int> out;
  for (int r = 0; r < size_; ++r) {
    if (world_.dead_[static_cast<std::size_t>(r)] != 0) out.push_back(r);
  }
  return out;
}

void Comm::send_bytes(int dest, int tag, const std::byte* p, std::size_t n) {
  if (dest < 0 || dest >= size_) throw std::out_of_range("bad dest rank");
  if (resil::fault_fires("comm.send", static_cast<std::uint64_t>(dest))) {
    throw Error("injected comm.send fault: rank " + std::to_string(rank_) +
                " -> rank " + std::to_string(dest) + " tag " +
                std::to_string(tag));
  }
  static const obs::Counter c_msgs = obs::metrics().counter(
      "vmc_comm_messages_total", {}, "Point-to-point messages sent");
  static const obs::Counter c_bytes = obs::metrics().counter(
      "vmc_comm_bytes_total", {}, "Point-to-point payload bytes sent");
  c_msgs.inc();
  c_bytes.inc(n);
  std::vector<std::byte> msg(p, p + n);
  {
    std::lock_guard lk(world_.mu_);
    world_
        .mail_[static_cast<std::size_t>(rank_) * static_cast<std::size_t>(size_) +
               static_cast<std::size_t>(dest)][tag]
        .messages.push_back(std::move(msg));
  }
  world_.cv_.notify_all();
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  if (src < 0 || src >= size_) throw std::out_of_range("bad src rank");
  std::unique_lock lk(world_.mu_);
  auto& box =
      world_.mail_[static_cast<std::size_t>(src) * static_cast<std::size_t>(size_) +
                   static_cast<std::size_t>(rank_)];
  const auto ready = [&] {
    auto it = box.find(tag);
    if (it != box.end() && !it->second.messages.empty()) return true;
    // A dead sender will never deliver: wake up and fail loudly below
    // rather than deadlock the survivor.
    return world_.dead_[static_cast<std::size_t>(src)] != 0;
  };
  world_.cv_.wait(lk, ready);
  auto it = box.find(tag);
  if (it == box.end() || it->second.messages.empty()) {
    throw Error("recv from dead rank " + std::to_string(src) + " tag " +
                std::to_string(tag) + " at rank " + std::to_string(rank_));
  }
  auto& fifo = it->second.messages;
  std::vector<std::byte> out = std::move(fifo.front());
  fifo.pop_front();
  return out;
}

std::vector<std::byte> Comm::recv_bytes_for(int src, int tag,
                                            std::chrono::milliseconds timeout) {
  if (src < 0 || src >= size_) throw std::out_of_range("bad src rank");
  std::unique_lock lk(world_.mu_);
  auto& box =
      world_.mail_[static_cast<std::size_t>(src) * static_cast<std::size_t>(size_) +
                   static_cast<std::size_t>(rank_)];
  const auto ready = [&] {
    auto it = box.find(tag);
    if (it != box.end() && !it->second.messages.empty()) return true;
    return world_.dead_[static_cast<std::size_t>(src)] != 0;
  };
  if (!world_.cv_.wait_for(lk, timeout, ready)) {
    throw Error("recv timeout (" + std::to_string(timeout.count()) +
                " ms) waiting for rank " + std::to_string(src) + " tag " +
                std::to_string(tag) + " at rank " + std::to_string(rank_));
  }
  auto it = box.find(tag);
  if (it == box.end() || it->second.messages.empty()) {
    throw Error("recv from dead rank " + std::to_string(src) + " tag " +
                std::to_string(tag) + " at rank " + std::to_string(rank_));
  }
  auto& fifo = it->second.messages;
  std::vector<std::byte> out = std::move(fifo.front());
  fifo.pop_front();
  return out;
}

void Comm::barrier() {
  std::unique_lock lk(world_.mu_);
  const std::uint64_t gen = world_.barrier_generation_;
  if (++world_.barrier_waiting_ >= world_.alive_count_locked()) {
    world_.barrier_waiting_ = 0;
    ++world_.barrier_generation_;
    world_.cv_.notify_all();
    return;
  }
  world_.cv_.wait(lk, [&] { return world_.barrier_generation_ != gen; });
}

std::vector<double> Comm::allreduce_sum(const std::vector<double>& v) {
  {
    std::lock_guard lk(world_.mu_);
    world_.reduce_slots_[static_cast<std::size_t>(rank_)] = v;
  }
  barrier();
  std::vector<double> out(v.size(), 0.0);
  {
    std::lock_guard lk(world_.mu_);
    for (int r = 0; r < size_; ++r) {
      if (world_.dead_[static_cast<std::size_t>(r)] != 0) continue;
      const auto& slot = world_.reduce_slots_[static_cast<std::size_t>(r)];
      if (slot.size() != out.size()) {
        throw std::logic_error("allreduce size mismatch across ranks");
      }
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += slot[i];
    }
  }
  barrier();  // nobody rewrites slots until everyone has read
  return out;
}

double Comm::allreduce_sum(double v) { return allreduce_sum(std::vector{v})[0]; }

std::uint64_t Comm::allreduce_sum(std::uint64_t v) {
  return static_cast<std::uint64_t>(
      allreduce_sum(std::vector{static_cast<double>(v)})[0] + 0.5);
}

double Comm::allreduce_max(double v) {
  {
    std::lock_guard lk(world_.mu_);
    world_.reduce_slots_[static_cast<std::size_t>(rank_)] = {v};
  }
  barrier();
  double out = v;
  {
    std::lock_guard lk(world_.mu_);
    for (int r = 0; r < size_; ++r) {
      if (world_.dead_[static_cast<std::size_t>(r)] != 0) continue;
      const auto& slot = world_.reduce_slots_[static_cast<std::size_t>(r)];
      if (!slot.empty() && slot[0] > out) out = slot[0];
    }
  }
  barrier();
  return out;
}

}  // namespace vmc::comm
