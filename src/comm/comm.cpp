#include "comm/comm.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

namespace vmc::comm {

World::World(int n_ranks) : size_(n_ranks) {
  if (n_ranks < 1) throw std::invalid_argument("World needs >= 1 rank");
  mail_.resize(static_cast<std::size_t>(size_) * static_cast<std::size_t>(size_));
  reduce_slots_.resize(static_cast<std::size_t>(size_));
  coll_slots_.resize(static_cast<std::size_t>(size_));
}

void World::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::exception_ptr first_error;
  std::mutex err_mu;

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &fn, &first_error, &err_mu] {
      Comm c(*this, r, size_);
      try {
        fn(c);
      } catch (...) {
        std::lock_guard lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void Comm::send_bytes(int dest, int tag, const std::byte* p, std::size_t n) {
  if (dest < 0 || dest >= size_) throw std::out_of_range("bad dest rank");
  std::vector<std::byte> msg(p, p + n);
  {
    std::lock_guard lk(world_.mu_);
    world_
        .mail_[static_cast<std::size_t>(rank_) * static_cast<std::size_t>(size_) +
               static_cast<std::size_t>(dest)][tag]
        .messages.push_back(std::move(msg));
  }
  world_.cv_.notify_all();
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  if (src < 0 || src >= size_) throw std::out_of_range("bad src rank");
  std::unique_lock lk(world_.mu_);
  auto& box =
      world_.mail_[static_cast<std::size_t>(src) * static_cast<std::size_t>(size_) +
                   static_cast<std::size_t>(rank_)];
  world_.cv_.wait(lk, [&] {
    auto it = box.find(tag);
    return it != box.end() && !it->second.messages.empty();
  });
  auto& fifo = box[tag].messages;
  std::vector<std::byte> out = std::move(fifo.front());
  fifo.pop_front();
  return out;
}

void Comm::barrier() {
  std::unique_lock lk(world_.mu_);
  const std::uint64_t gen = world_.barrier_generation_;
  if (++world_.barrier_waiting_ == size_) {
    world_.barrier_waiting_ = 0;
    ++world_.barrier_generation_;
    world_.cv_.notify_all();
    return;
  }
  world_.cv_.wait(lk, [&] { return world_.barrier_generation_ != gen; });
}

std::vector<double> Comm::allreduce_sum(const std::vector<double>& v) {
  {
    std::lock_guard lk(world_.mu_);
    world_.reduce_slots_[static_cast<std::size_t>(rank_)] = v;
  }
  barrier();
  std::vector<double> out(v.size(), 0.0);
  {
    std::lock_guard lk(world_.mu_);
    for (int r = 0; r < size_; ++r) {
      const auto& slot = world_.reduce_slots_[static_cast<std::size_t>(r)];
      if (slot.size() != out.size()) {
        throw std::logic_error("allreduce size mismatch across ranks");
      }
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += slot[i];
    }
  }
  barrier();  // nobody rewrites slots until everyone has read
  return out;
}

double Comm::allreduce_sum(double v) { return allreduce_sum(std::vector{v})[0]; }

std::uint64_t Comm::allreduce_sum(std::uint64_t v) {
  return static_cast<std::uint64_t>(
      allreduce_sum(std::vector{static_cast<double>(v)})[0] + 0.5);
}

double Comm::allreduce_max(double v) {
  {
    std::lock_guard lk(world_.mu_);
    world_.reduce_slots_[static_cast<std::size_t>(rank_)] = {v};
  }
  barrier();
  double out = v;
  {
    std::lock_guard lk(world_.mu_);
    for (int r = 0; r < size_; ++r) {
      const auto& slot = world_.reduce_slots_[static_cast<std::size_t>(r)];
      if (!slot.empty() && slot[0] > out) out = slot[0];
    }
  }
  barrier();
  return out;
}

}  // namespace vmc::comm
