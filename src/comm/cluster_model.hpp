// Interconnect cost model for the distributed-scaling projections.
//
// Figures 6-7 scale the symmetric-mode simulation to 1,024 Stampede nodes
// (FDR InfiniBand). The per-batch communication of OpenMC's eigenvalue loop
// is one allreduce of the tally/k vector plus fission-bank redistribution;
// both are modeled here with the standard latency/bandwidth/log(p) terms.
#pragma once

#include <cmath>
#include <cstddef>

namespace vmc::comm {

struct ClusterModel {
  double latency_s = 2.0e-6;      // per message, FDR IB MPI ~1-3 us
  double bandwidth_gbs = 6.0;     // per-link effective (FDR 56 Gb/s raw)
  double per_rank_overhead_s = 5.0e-6;  // software per-rank cost at the root

  /// Recursive-doubling allreduce of `bytes` across `ranks`.
  double allreduce_seconds(int ranks, std::size_t bytes) const {
    if (ranks <= 1) return 0.0;
    const double stages = std::ceil(std::log2(static_cast<double>(ranks)));
    return stages *
           (latency_s + static_cast<double>(bytes) / (bandwidth_gbs * 1e9));
  }

  /// Point-to-point transfer.
  double p2p_seconds(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
  }

  /// Fission-bank rebalance: modeled as each rank exchanging `site_bytes`
  /// with a neighbor plus one counting allreduce.
  double bank_exchange_seconds(int ranks, std::size_t site_bytes) const {
    if (ranks <= 1) return 0.0;
    return allreduce_seconds(ranks, 8) + p2p_seconds(site_bytes);
  }

  /// Stampede-like FDR InfiniBand fabric.
  static ClusterModel stampede() { return ClusterModel{}; }
};

}  // namespace vmc::comm
