#include "multipole/doppler.hpp"

#include <algorithm>
#include <cmath>

namespace vmc::multipole {

xs::Nuclide broadened_nuclide(const WindowedMultipole& wmp,
                              const std::string& name,
                              const BroadenOptions& opt) {
  const double dopp = doppler_width(opt.kt_mev, opt.awr);

  xs::Nuclide n;
  n.name = name;
  n.awr = opt.awr;
  n.fissionable = opt.fissionable;
  n.nu = opt.nu;

  const double lo = wmp.e_min();
  const double hi = wmp.e_max() * 0.9999;
  const int g = std::max(16, opt.grid_points);
  n.energy.reserve(static_cast<std::size_t>(g));
  for (int i = 0; i < g; ++i) {
    n.energy.push_back(
        lo * std::pow(hi / lo, static_cast<double>(i) / (g - 1)));
  }

  n.total.resize(n.energy.size());
  n.scatter.resize(n.energy.size());
  n.absorption.resize(n.energy.size());
  n.fission.resize(n.energy.size());
  for (std::size_t i = 0; i < n.energy.size(); ++i) {
    const MpXs xs = wmp.evaluate(n.energy[i], dopp);
    // The multipole reconstruction can undershoot at deep interference dips
    // in single precision; clamp to a physical floor.
    const double total = std::max(0.05, xs.total);
    const double absorption =
        std::clamp(std::abs(xs.absorption), 1e-6, total * 0.95);
    const double scatter = total - absorption;
    const double fission =
        opt.fissionable ? opt.fission_fraction * absorption : 0.0;
    n.total[i] = static_cast<float>(total);
    n.scatter[i] = static_cast<float>(scatter);
    n.absorption[i] = static_cast<float>(absorption);
    n.fission[i] = static_cast<float>(fission);
  }
  return n;
}

}  // namespace vmc::multipole
