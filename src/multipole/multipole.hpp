// Windowed-multipole cross-section representation — the RSBench substitute
// (Section IV-B, Figure 8).
//
// Instead of pointwise table lookups, cross sections are reconstructed at
// arbitrary temperature as a sum over complex poles, each weighted by a
// Faddeeva-function evaluation, plus a per-window polynomial background:
//
//   sigma_r(E, T) = Re[ sum_{j in window(E)} res_rj * W((sqrt(E) - p_j)/dop) ]
//                   / E  +  curvefit_window(sqrt(E))
//
// This trades the memory-bound table gather for compute-bound complex
// arithmetic — "potentially turns a memory-bound problem into a
// compute-bound problem" — which is exactly why the paper finds it so
// promising on the MIC. Two evaluation kernels are provided:
//   * evaluate():        the original RSBench formulation — a variable
//                        number of poles per window, scalar Humlicek w4;
//   * evaluate_fixed():  the paper's vectorized variant — poles padded to a
//                        fixed per-window count, SIMD across poles with the
//                        branch-free region-3 Faddeeva.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "simd/aligned.hpp"

namespace vmc::multipole {

/// Cross sections produced by the multipole reconstruction (RSBench tracks
/// these three channels).
struct MpXs {
  double total = 0.0;
  double absorption = 0.0;
  double fission = 0.0;
};

struct Pole {
  std::complex<double> position;  // in sqrt(E) space (MeV^1/2)
  std::complex<double> res_total;
  std::complex<double> res_absorption;
  std::complex<double> res_fission;
};

class WindowedMultipole {
 public:
  struct Params {
    double e_min = 1.0e-5;   // MeV
    double e_max = 1.0e-1;
    int n_windows = 100;
    int poles_per_window_mean = 12;  // variable in the original layout
    int poles_per_window_fixed = 16; // padded count for the vector kernel
    double background = 10.0;        // barns, smooth part
    bool fissionable = true;
    unsigned curvefit_order = 3;
  };

  /// Build a synthetic pole set (resonance-like, deterministic by seed).
  static WindowedMultipole make_synthetic(std::uint64_t seed,
                                          const Params& p);

  /// Original kernel: variable poles/window, scalar w4 Faddeeva.
  MpXs evaluate(double e, double dopp_width) const;

  /// Vectorized kernel: fixed poles/window, SIMD Faddeeva across poles.
  MpXs evaluate_fixed(double e, double dopp_width) const;

  int n_windows() const { return n_windows_; }
  std::size_t n_poles() const { return poles_.size(); }
  int poles_per_window_fixed() const { return fixed_count_; }
  double e_min() const { return e_min_; }
  double e_max() const { return e_max_; }

  /// Bytes of pole + curvefit data (the "remarkably low memory cost").
  std::size_t data_bytes() const;

 private:
  int window_of(double sqrt_e) const;

  double e_min_ = 0.0, e_max_ = 0.0;
  double sqrt_lo_ = 0.0, inv_spacing_ = 0.0;
  int n_windows_ = 0;
  int fixed_count_ = 0;

  // Variable layout (original): per-window [start, end) into poles_.
  std::vector<std::int32_t> w_start_, w_end_;
  std::vector<Pole> poles_;
  // Fixed layout (vectorized): SoA, n_windows * fixed_count lanes, padded
  // with zero-residue poles.
  simd::aligned_vector<double> f_pos_re_, f_pos_im_;
  simd::aligned_vector<double> f_rt_re_, f_rt_im_;
  simd::aligned_vector<double> f_ra_re_, f_ra_im_;
  simd::aligned_vector<double> f_rf_re_, f_rf_im_;
  // Per-window curvefit background: [window][order+1] coefficients in
  // sqrt(E), per channel.
  unsigned curvefit_order_ = 0;
  std::vector<double> cf_total_, cf_absorption_, cf_fission_;
};

/// Doppler half-width in sqrt(E) space for temperature kT (MeV) and mass
/// ratio awr (the standard multipole broadening parameter).
double doppler_width(double kt_mev, double awr);

}  // namespace vmc::multipole
