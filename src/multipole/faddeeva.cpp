#include "multipole/faddeeva.hpp"

#include <cmath>

namespace vmc::multipole {

std::complex<double> faddeeva(std::complex<double> z) {
  // Humlicek (1982) w4 algorithm, valid for Im(z) >= 0. For Im(z) < 0 use
  // the reflection w(z) = 2 exp(-z^2) - conj(w(conj(z))).
  const double x = z.real();
  const double y = z.imag();
  if (y < 0.0) {
    const std::complex<double> w = faddeeva(std::conj(z));
    return 2.0 * std::exp(-z * z) - std::conj(w);
  }

  const std::complex<double> t(y, -x);
  const double s = std::abs(x) + y;

  if (s >= 15.0) {
    // Region I: asymptotic.
    return t * 0.5641896 / (0.5 + t * t);
  }
  if (s >= 5.5) {
    // Region II.
    const std::complex<double> u = t * t;
    return t * (1.410474 + u * 0.5641896) / (0.75 + u * (3.0 + u));
  }
  if (y >= 0.195 * std::abs(x) - 0.176) {
    // Region III.
    return (16.4955 +
            t * (20.20933 + t * (11.96482 + t * (3.778987 + t * 0.5642236)))) /
           (16.4955 +
            t * (38.82363 +
                 t * (39.27121 + t * (21.69274 + t * (6.699398 + t)))));
  }
  // Region IV (near the real axis).
  const std::complex<double> u = t * t;
  const std::complex<double> num =
      t * (36183.31 -
           u * (3321.9905 -
                u * (1540.787 -
                     u * (219.0313 - u * (35.76683 - u * (1.320522 - u * 0.56419))))));
  const std::complex<double> den =
      32066.6 -
      u * (24322.84 -
           u * (9022.228 -
                u * (2186.181 -
                     u * (364.2191 - u * (61.57037 - u * (1.841439 - u))))));
  return std::exp(u) - num / den;
}

}  // namespace vmc::multipole
