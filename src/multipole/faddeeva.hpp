// Faddeeva function w(z) = exp(-z^2) erfc(-iz) — the kernel of the
// multipole Doppler-broadening method (Section IV-B, [Hwang 1987;
// Forget, Xu & Smith 2014]).
//
// Scalar path: Humlicek's four-region w4 rational approximation (relative
// error < 1e-4 everywhere, much better away from the real axis) — the same
// algorithm family RSBench uses. Vector path: the region-3 rational only,
// which is branch-free (one rational evaluation per lane) and valid for the
// |x|+y >= 0.85 region where multipole windows operate; the vectorized
// RSBench variant makes exactly this trade.
#pragma once

#include <complex>

#include "simd/vec.hpp"

namespace vmc::multipole {

/// Humlicek w4: full four-region approximation (scalar).
std::complex<double> faddeeva(std::complex<double> z);

/// Branch-free region-3 rational approximation, lane-parallel. Accurate to
/// ~1e-4 for |x| + y >= 0.85; callers guarantee the argument region (the
/// windowed-multipole formulation does, because the Doppler width keeps
/// Im(z) bounded away from 0).
template <int N>
void faddeeva_region3(simd::Vec<double, N> x, simd::Vec<double, N> y,
                      simd::Vec<double, N>& re, simd::Vec<double, N>& im) {
  using VD = simd::Vec<double, N>;
  // t = y - i x; evaluate two real rationals for Re/Im via complex Horner
  // with explicit real/imaginary parts.
  const VD tr = y;
  const VD ti = -x;

  // numerator: 16.4955 + t*(20.20933 + t*(11.96482 + t*(3.778987 +
  //            t*0.5642236)))
  VD nr(0.5642236), ni(0.0);
  const auto mul_add = [&](VD& ar, VD& ai, double c) {
    const VD r2 = ar * tr - ai * ti + VD(c);
    const VD i2 = ar * ti + ai * tr;
    ar = r2;
    ai = i2;
  };
  mul_add(nr, ni, 3.778987);
  mul_add(nr, ni, 11.96482);
  mul_add(nr, ni, 20.20933);
  mul_add(nr, ni, 16.4955);

  // denominator: 16.4955 + t*(38.82363 + t*(39.27121 + t*(21.69274 +
  //              t*(6.699398 + t))))
  VD dr(1.0), di(0.0);
  mul_add(dr, di, 6.699398);
  mul_add(dr, di, 21.69274);
  mul_add(dr, di, 39.27121);
  mul_add(dr, di, 38.82363);
  mul_add(dr, di, 16.4955);

  // w = num / den  (complex divide)
  const VD d2 = dr * dr + di * di;
  re = (nr * dr + ni * di) / d2;
  im = (ni * dr - nr * di) / d2;
}

}  // namespace vmc::multipole
