#include "multipole/multipole.hpp"

#include <algorithm>
#include <cmath>

#include "multipole/faddeeva.hpp"
#include "rng/stream.hpp"
#include "simd/simd.hpp"

namespace vmc::multipole {

double doppler_width(double kt_mev, double awr) {
  // xi = sqrt(kT / A) in sqrt-energy units (standard multipole broadening).
  return std::sqrt(kt_mev / awr);
}

WindowedMultipole WindowedMultipole::make_synthetic(std::uint64_t seed,
                                                    const Params& p) {
  rng::Stream rs(seed * 6364136223846793005ULL + 1442695040888963407ULL);
  WindowedMultipole m;
  m.e_min_ = p.e_min;
  m.e_max_ = p.e_max;
  m.n_windows_ = p.n_windows;
  // The vector kernel sweeps whole lanes; pad the fixed count up.
  m.fixed_count_ = static_cast<int>(simd::round_up(
      static_cast<std::size_t>(p.poles_per_window_fixed),
      static_cast<std::size_t>(simd::width_v<double>)));
  m.curvefit_order_ = p.curvefit_order;
  m.sqrt_lo_ = std::sqrt(p.e_min);
  const double sqrt_hi = std::sqrt(p.e_max);
  const double spacing = (sqrt_hi - m.sqrt_lo_) / p.n_windows;
  m.inv_spacing_ = 1.0 / spacing;

  for (int w = 0; w < p.n_windows; ++w) {
    const double lo = m.sqrt_lo_ + w * spacing;
    // Variable pole count (original RSBench layout): Poissonian-ish around
    // the mean, at least 2.
    const int count = std::clamp(
        static_cast<int>(p.poles_per_window_mean * (0.4 + 1.2 * rs.next())), 2,
        m.fixed_count_);
    m.w_start_.push_back(static_cast<std::int32_t>(m.poles_.size()));
    for (int k = 0; k < count; ++k) {
      Pole pole;
      const double pos = lo + spacing * rs.next();
      const double width = spacing * (0.002 + 0.02 * rs.next());
      pole.position = {pos, -width};  // resonance poles sit below the axis
      // Residue magnitudes chosen so peak cross sections come out at the
      // hundreds-of-barns scale after the 1/dopp and 1/E factors.
      const double rt = (0.5 + 4.0 * rs.next()) * 2.0e-6;
      const double phase = 6.2831853 * rs.next();
      pole.res_total = std::polar(rt, phase);
      pole.res_absorption = std::polar(0.4 * rt, phase + 0.3);
      pole.res_fission = p.fissionable
                             ? std::polar(0.2 * rt, phase + 0.6)
                             : std::complex<double>(0.0, 0.0);
      m.poles_.push_back(pole);
    }
    m.w_end_.push_back(static_cast<std::int32_t>(m.poles_.size()));

    // Curvefit background: smooth polynomial in sqrt(E).
    for (unsigned o = 0; o <= p.curvefit_order; ++o) {
      const double base = o == 0 ? p.background * (0.8 + 0.4 * rs.next()) : 0.2 * (rs.next() - 0.5);
      m.cf_total_.push_back(base);
      m.cf_absorption_.push_back(0.3 * base);
      m.cf_fission_.push_back(p.fissionable ? 0.1 * base : 0.0);
    }
  }

  // Fixed SoA layout: pad each window to fixed_count with zero-residue
  // poles parked at the window center (they evaluate to W * 0 = 0).
  const std::size_t total =
      static_cast<std::size_t>(p.n_windows) *
      static_cast<std::size_t>(m.fixed_count_);
  m.f_pos_re_.assign(total, 0.0);
  m.f_pos_im_.assign(total, -1.0);
  m.f_rt_re_.assign(total, 0.0);
  m.f_rt_im_.assign(total, 0.0);
  m.f_ra_re_.assign(total, 0.0);
  m.f_ra_im_.assign(total, 0.0);
  m.f_rf_re_.assign(total, 0.0);
  m.f_rf_im_.assign(total, 0.0);
  for (int w = 0; w < p.n_windows; ++w) {
    const double center = m.sqrt_lo_ + (w + 0.5) * spacing;
    const std::size_t base =
        static_cast<std::size_t>(w) * static_cast<std::size_t>(m.fixed_count_);
    int k = 0;
    for (std::int32_t j = m.w_start_[static_cast<std::size_t>(w)];
         j < m.w_end_[static_cast<std::size_t>(w)] && k < m.fixed_count_;
         ++j, ++k) {
      const Pole& pole = m.poles_[static_cast<std::size_t>(j)];
      m.f_pos_re_[base + static_cast<std::size_t>(k)] = pole.position.real();
      m.f_pos_im_[base + static_cast<std::size_t>(k)] = pole.position.imag();
      m.f_rt_re_[base + static_cast<std::size_t>(k)] = pole.res_total.real();
      m.f_rt_im_[base + static_cast<std::size_t>(k)] = pole.res_total.imag();
      m.f_ra_re_[base + static_cast<std::size_t>(k)] =
          pole.res_absorption.real();
      m.f_ra_im_[base + static_cast<std::size_t>(k)] =
          pole.res_absorption.imag();
      m.f_rf_re_[base + static_cast<std::size_t>(k)] = pole.res_fission.real();
      m.f_rf_im_[base + static_cast<std::size_t>(k)] = pole.res_fission.imag();
    }
    for (; k < m.fixed_count_; ++k) {
      m.f_pos_re_[base + static_cast<std::size_t>(k)] = center;
      m.f_pos_im_[base + static_cast<std::size_t>(k)] = -spacing;
    }
  }
  return m;
}

int WindowedMultipole::window_of(double sqrt_e) const {
  int w = static_cast<int>((sqrt_e - sqrt_lo_) * inv_spacing_);
  return std::clamp(w, 0, n_windows_ - 1);
}

MpXs WindowedMultipole::evaluate(double e, double dopp_width) const {
  const double sqrt_e = std::sqrt(e);
  const int w = window_of(sqrt_e);
  const double inv_e = 1.0 / e;
  const double inv_dopp = 1.0 / dopp_width;

  MpXs xs;
  // Curvefit background.
  {
    const std::size_t base =
        static_cast<std::size_t>(w) * (curvefit_order_ + 1);
    double pw = 1.0;
    for (unsigned o = 0; o <= curvefit_order_; ++o) {
      xs.total += cf_total_[base + o] * pw;
      xs.absorption += cf_absorption_[base + o] * pw;
      xs.fission += cf_fission_[base + o] * pw;
      pw *= sqrt_e;
    }
  }
  // Pole sum with full Humlicek w4 (variable pole count — the original
  // RSBench control flow).
  for (std::int32_t j = w_start_[static_cast<std::size_t>(w)];
       j < w_end_[static_cast<std::size_t>(w)]; ++j) {
    const Pole& p = poles_[static_cast<std::size_t>(j)];
    const std::complex<double> z =
        (std::complex<double>(sqrt_e, 0.0) - p.position) * inv_dopp;
    const std::complex<double> wv = faddeeva(z) * inv_dopp;
    xs.total += (p.res_total * wv).real() * inv_e;
    xs.absorption += (p.res_absorption * wv).real() * inv_e;
    xs.fission += (p.res_fission * wv).real() * inv_e;
  }
  return xs;
}

MpXs WindowedMultipole::evaluate_fixed(double e, double dopp_width) const {
  constexpr int L = simd::width_v<double>;
  using VD = simd::Vec<double, L>;

  const double sqrt_e = std::sqrt(e);
  const int w = window_of(sqrt_e);
  const double inv_e = 1.0 / e;
  const double inv_dopp = 1.0 / dopp_width;

  MpXs xs;
  {
    const std::size_t base =
        static_cast<std::size_t>(w) * (curvefit_order_ + 1);
    double pw = 1.0;
    for (unsigned o = 0; o <= curvefit_order_; ++o) {
      xs.total += cf_total_[base + o] * pw;
      xs.absorption += cf_absorption_[base + o] * pw;
      xs.fission += cf_fission_[base + o] * pw;
      pw *= sqrt_e;
    }
  }

  const std::size_t base =
      static_cast<std::size_t>(w) * static_cast<std::size_t>(fixed_count_);
  const VD se(sqrt_e);
  const VD idop(inv_dopp);
  VD acc_t(0.0), acc_a(0.0), acc_f(0.0);
  // fixed_count_ is a multiple of the lane width by construction (padded),
  // so this stride loop has no remainder. vmc-lint: allow(unmasked-remainder)
  for (int k = 0; k < fixed_count_; k += L) {
    const std::size_t o = base + static_cast<std::size_t>(k);
    const VD pr = VD::loadu(f_pos_re_.data() + o);
    const VD pi = VD::loadu(f_pos_im_.data() + o);
    const VD zx = (se - pr) * idop;
    const VD zy = -pi * idop;  // Im(z) = (0 - Im(pole)) / dopp > 0
    VD wr, wi;
    faddeeva_region3(zx, zy, wr, wi);
    wr *= idop;
    wi *= idop;
    const auto channel = [&](const double* rre, const double* rim, VD& acc) {
      const VD rr = VD::loadu(rre + o);
      const VD ri = VD::loadu(rim + o);
      // Re[(rr + i ri)(wr + i wi)] = rr*wr - ri*wi
      acc = acc + rr * wr - ri * wi;
    };
    channel(f_rt_re_.data(), f_rt_im_.data(), acc_t);
    channel(f_ra_re_.data(), f_ra_im_.data(), acc_a);
    channel(f_rf_re_.data(), f_rf_im_.data(), acc_f);
  }
  xs.total += acc_t.hsum() * inv_e;
  xs.absorption += acc_a.hsum() * inv_e;
  xs.fission += acc_f.hsum() * inv_e;
  return xs;
}

std::size_t WindowedMultipole::data_bytes() const {
  return poles_.size() * sizeof(Pole) +
         (w_start_.size() + w_end_.size()) * sizeof(std::int32_t) +
         (f_pos_re_.size() * 8) * sizeof(double) +
         (cf_total_.size() + cf_absorption_.size() + cf_fission_.size()) *
             sizeof(double);
}

}  // namespace vmc::multipole
