// Direct Doppler broadening via the multipole representation
// [Forget, Xu & Smith 2014] — the motivation of Section IV-B: temperature
// dependence "at remarkably low memory cost", because one compact pole set
// reconstructs sigma(E, T) at ANY temperature instead of storing a
// pointwise table per temperature.
//
// `broadened_nuclide` materializes a conventional pointwise xs::Nuclide at a
// chosen temperature from a WindowedMultipole, so the rest of the transport
// stack (library, unionized grid, lookup kernels, trackers) consumes
// temperature-correct data without modification.
#pragma once

#include <cstdint>
#include <string>

#include "multipole/multipole.hpp"
#include "xsdata/nuclide.hpp"

namespace vmc::multipole {

struct BroadenOptions {
  double kt_mev = 2.53e-8;   // kT: 2.53e-8 MeV = 293.6 K
  double awr = 238.0;
  int grid_points = 4000;    // log-spaced reconstruction grid
  double fission_fraction = 0.3;  // of absorption, when fissionable
  bool fissionable = false;
  double nu = 2.43;
};

/// Evaluate the multipole set on a log grid over its energy range at
/// temperature kT and package the result as a pointwise nuclide. Outside
/// the multipole range the cross sections are held constant (clamped).
xs::Nuclide broadened_nuclide(const WindowedMultipole& wmp,
                              const std::string& name,
                              const BroadenOptions& opt);

/// Convenience: kT in MeV for a temperature in kelvin.
constexpr double kt_from_kelvin(double t_kelvin) {
  return 8.617333262e-11 * t_kelvin;  // Boltzmann constant in MeV/K
}

}  // namespace vmc::multipole
