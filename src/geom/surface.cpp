#include "geom/surface.hpp"

#include <cmath>

namespace vmc::geom {

namespace {
// Tolerance for "on the surface" when deciding crossing roots.
constexpr double kCoincidentTol = 1e-10;

/// Distance to an axis-aligned plane at `plane` along component (x0, ux).
double plane_distance(double x0, double ux, double plane, bool coincident) {
  if (ux == 0.0) return kInfDistance;
  const double d = (plane - x0) / ux;
  return (d <= 0.0 || (coincident && d < kCoincidentTol)) ? kInfDistance : d;
}

/// Distance to a circle of radius r in a 2D subspace: point (dx, dy) is
/// relative to the center, (ux, uy) the in-plane direction components.
double quadric_distance(double dx, double dy, double ux, double uy, double r,
                        bool coincident) {
  const double a = ux * ux + uy * uy;
  if (a == 0.0) return kInfDistance;  // travelling parallel to the axis
  const double k = dx * ux + dy * uy;
  const double c = dx * dx + dy * dy - r * r;
  const double quad = k * k - a * c;
  if (quad < 0.0) return kInfDistance;
  const double sq = std::sqrt(quad);
  if (coincident || std::abs(c) < kCoincidentTol * r * r) {
    // On the surface: take the far root if it moves inward, else none.
    const double d = (-k + sq) / a;
    return (d <= kCoincidentTol || k >= 0.0) ? kInfDistance : d;
  }
  if (c < 0.0) {
    // Inside: always exits through the far root.
    return (-k + sq) / a;
  }
  // Outside: near root if approaching.
  const double d = (-k - sq) / a;
  return d <= 0.0 ? kInfDistance : d;
}

/// 3D version for the sphere.
double sphere_distance(double dx, double dy, double dz, Direction u, double r,
                       bool coincident) {
  const double k = dx * u.x + dy * u.y + dz * u.z;
  const double c = dx * dx + dy * dy + dz * dz - r * r;
  const double quad = k * k - c;  // |u| = 1
  if (quad < 0.0) return kInfDistance;
  const double sq = std::sqrt(quad);
  if (coincident || std::abs(c) < kCoincidentTol * r * r) {
    const double d = -k + sq;
    return (d <= kCoincidentTol || k >= 0.0) ? kInfDistance : d;
  }
  if (c < 0.0) return -k + sq;
  const double d = -k - sq;
  return d <= 0.0 ? kInfDistance : d;
}

}  // namespace

double Surface::sense(Position p) const {
  switch (kind_) {
    case Kind::xplane:
      return p.x - a_;
    case Kind::yplane:
      return p.y - a_;
    case Kind::zplane:
      return p.z - a_;
    case Kind::xcylinder: {
      const double dy = p.y - a_;
      const double dz = p.z - b_;
      return dy * dy + dz * dz - c_ * c_;
    }
    case Kind::ycylinder: {
      const double dx = p.x - a_;
      const double dz = p.z - b_;
      return dx * dx + dz * dz - c_ * c_;
    }
    case Kind::zcylinder: {
      const double dx = p.x - a_;
      const double dy = p.y - b_;
      return dx * dx + dy * dy - c_ * c_;
    }
    case Kind::sphere: {
      const double dx = p.x - a_;
      const double dy = p.y - b_;
      const double dz = p.z - c_;
      return dx * dx + dy * dy + dz * dz - r_ * r_;
    }
  }
  return 0.0;
}

double Surface::signed_distance(Position p) const {
  switch (kind_) {
    case Kind::xplane:
    case Kind::yplane:
    case Kind::zplane:
      return sense(p);  // sense is already the signed distance for planes
    case Kind::xcylinder: {
      const double dy = p.y - a_;
      const double dz = p.z - b_;
      return std::sqrt(dy * dy + dz * dz) - c_;
    }
    case Kind::ycylinder: {
      const double dx = p.x - a_;
      const double dz = p.z - b_;
      return std::sqrt(dx * dx + dz * dz) - c_;
    }
    case Kind::zcylinder: {
      const double dx = p.x - a_;
      const double dy = p.y - b_;
      return std::sqrt(dx * dx + dy * dy) - c_;
    }
    case Kind::sphere: {
      const double dx = p.x - a_;
      const double dy = p.y - b_;
      const double dz = p.z - c_;
      return std::sqrt(dx * dx + dy * dy + dz * dz) - r_;
    }
  }
  return 0.0;
}

double Surface::distance(Position p, Direction u, bool coincident) const {
  switch (kind_) {
    case Kind::xplane:
      return plane_distance(p.x, u.x, a_, coincident);
    case Kind::yplane:
      return plane_distance(p.y, u.y, a_, coincident);
    case Kind::zplane:
      return plane_distance(p.z, u.z, a_, coincident);
    case Kind::xcylinder:
      return quadric_distance(p.y - a_, p.z - b_, u.y, u.z, c_, coincident);
    case Kind::ycylinder:
      return quadric_distance(p.x - a_, p.z - b_, u.x, u.z, c_, coincident);
    case Kind::zcylinder:
      return quadric_distance(p.x - a_, p.y - b_, u.x, u.y, c_, coincident);
    case Kind::sphere:
      return sphere_distance(p.x - a_, p.y - b_, p.z - c_, u, r_, coincident);
  }
  return kInfDistance;
}

Direction Surface::normal(Position p) const {
  switch (kind_) {
    case Kind::xplane:
      return {1.0, 0.0, 0.0};
    case Kind::yplane:
      return {0.0, 1.0, 0.0};
    case Kind::zplane:
      return {0.0, 0.0, 1.0};
    case Kind::xcylinder: {
      const double dy = p.y - a_;
      const double dz = p.z - b_;
      const double n = std::sqrt(dy * dy + dz * dz);
      if (n == 0.0) return {0.0, 1.0, 0.0};
      return {0.0, dy / n, dz / n};
    }
    case Kind::ycylinder: {
      const double dx = p.x - a_;
      const double dz = p.z - b_;
      const double n = std::sqrt(dx * dx + dz * dz);
      if (n == 0.0) return {1.0, 0.0, 0.0};
      return {dx / n, 0.0, dz / n};
    }
    case Kind::zcylinder: {
      const double dx = p.x - a_;
      const double dy = p.y - b_;
      const double n = std::sqrt(dx * dx + dy * dy);
      if (n == 0.0) return {1.0, 0.0, 0.0};
      return {dx / n, dy / n, 0.0};
    }
    case Kind::sphere: {
      const double dx = p.x - a_;
      const double dy = p.y - b_;
      const double dz = p.z - c_;
      const double n = std::sqrt(dx * dx + dy * dy + dz * dz);
      if (n == 0.0) return {1.0, 0.0, 0.0};
      return {dx / n, dy / n, dz / n};
    }
  }
  return {0.0, 0.0, 1.0};
}

Direction rotate_direction(Direction u, double mu, double phi) {
  // Standard MC frame rotation [Lux & Koblinger]. Handles the pole
  // singularity |w| -> 1 explicitly.
  const double sinphi = std::sin(phi);
  const double cosphi = std::cos(phi);
  const double s = std::sqrt(std::max(0.0, 1.0 - mu * mu));
  const double a = std::sqrt(std::max(1e-30, 1.0 - u.z * u.z));
  Direction out;
  if (a > 1e-10) {
    out.x = mu * u.x + s * (u.x * u.z * cosphi - u.y * sinphi) / a;
    out.y = mu * u.y + s * (u.y * u.z * cosphi + u.x * sinphi) / a;
    out.z = mu * u.z - s * a * cosphi;
  } else {
    // Travelling along +-z: rotate about x.
    out.x = s * cosphi;
    out.y = s * sinphi;
    out.z = mu * (u.z > 0.0 ? 1.0 : -1.0);
  }
  // Renormalize to guard against drift over many collisions.
  return out.unit();
}

}  // namespace vmc::geom
