// Geometry plotting: rasterize a z-slice of the material map — the
// quickest way to verify a CSG model by eye (OpenMC ships the same
// capability for the same reason).
#pragma once

#include <string>
#include <vector>

#include "geom/geometry.hpp"

namespace vmc::geom {

/// Materials on an (nx x ny) raster of the z = `z` plane over
/// [lo.x, hi.x] x [lo.y, hi.y], sampled at pixel centers, row-major with
/// iy = 0 at lo.y. Outside-geometry pixels are -1.
std::vector<int> material_slice(const Geometry& g, double z, Position lo,
                                Position hi, int nx, int ny);

/// Render a slice as ASCII art: material m prints as `palette[m]`, outside
/// as ' '. Materials beyond the palette wrap around. Rows are emitted top
/// (hi.y) to bottom so the picture is orientation-correct.
std::string ascii_slice(const Geometry& g, double z, Position lo, Position hi,
                        int nx, int ny,
                        const std::string& palette = "#o.+*%@x");

}  // namespace vmc::geom
