// Minimal 3-vector types for particle tracking.
#pragma once

#include <cmath>

namespace vmc::geom {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend Vec3 operator*(double s, Vec3 a) { return {s * a.x, s * a.y, s * a.z}; }
  Vec3& operator+=(Vec3 b) {
    x += b.x;
    y += b.y;
    z += b.z;
    return *this;
  }

  double dot(Vec3 b) const { return x * b.x + y * b.y + z * b.z; }
  double norm() const { return std::sqrt(dot(*this)); }

  /// Normalized copy (caller guarantees non-zero length).
  Vec3 unit() const {
    const double n = norm();
    return {x / n, y / n, z / n};
  }
};

using Position = Vec3;
using Direction = Vec3;

/// Build a unit direction from polar cosine mu (w.r.t. +z) and azimuth phi.
inline Direction direction_from_angles(double mu, double phi) {
  const double s = std::sqrt(std::max(0.0, 1.0 - mu * mu));
  return {s * std::cos(phi), s * std::sin(phi), mu};
}

/// Rotate direction `u` to a new direction with scattering cosine `mu`
/// relative to `u` and azimuth `phi` about it (standard MC kinematics).
Direction rotate_direction(Direction u, double mu, double phi);

}  // namespace vmc::geom
