#include "geom/geometry.hpp"

#include <cassert>
#include <cmath>

namespace vmc::geom {

namespace {
/// Positional bump past a crossed boundary (cm). Large enough to clear
/// floating-point fuzz, tiny relative to the thinnest region (the 0.06 cm
/// cladding).
constexpr double kBump = 1e-9;
}  // namespace

int Geometry::add_surface(Surface s) {
  surfaces_.push_back(s);
  return static_cast<int>(surfaces_.size()) - 1;
}

int Geometry::add_cell(Cell c) {
  cells_.push_back(std::move(c));
  return static_cast<int>(cells_.size()) - 1;
}

int Geometry::add_universe(Universe u) {
  universes_.push_back(std::move(u));
  return static_cast<int>(universes_.size()) - 1;
}

int Geometry::add_lattice(Lattice l) {
  assert(l.nx > 0 && l.ny > 0 && l.pitch > 0.0);
  assert(l.universe.size() ==
         static_cast<std::size_t>(l.nx) * static_cast<std::size_t>(l.ny));
  lattices_.push_back(std::move(l));
  return static_cast<int>(lattices_.size()) - 1;
}

bool Geometry::cell_contains(const Cell& c, Position r) const {
  for (const HalfSpace& h : c.region) {
    const double f = surfaces_[static_cast<std::size_t>(h.surface)].sense(r);
    if ((f > 0.0) != h.positive) return false;
  }
  return true;
}

bool Geometry::locate_recursive(int universe, int lev, State& s) const {
  if (lev >= kMaxLevels) return false;
  const Universe& u = universes_[static_cast<std::size_t>(universe)];
  Level& L = s.level[static_cast<std::size_t>(lev)];
  L.universe = universe;
  L.cell = -1;
  L.lattice = -1;
  L.ix = L.iy = -1;

  for (const std::int32_t ci : u.cells) {
    const Cell& c = cells_[static_cast<std::size_t>(ci)];
    if (!cell_contains(c, L.r)) continue;
    L.cell = ci;
    s.n_levels = lev + 1;
    switch (c.fill_type) {
      case FillType::material:
        s.material = c.fill;
        return true;
      case FillType::universe: {
        Level& next = s.level[static_cast<std::size_t>(lev + 1)];
        next.r = L.r;
        next.u = L.u;
        return locate_recursive(c.fill, lev + 1, s);
      }
      case FillType::lattice: {
        const Lattice& lat = lattices_[static_cast<std::size_t>(c.fill)];
        int ix = static_cast<int>(std::floor((L.r.x - lat.x0) / lat.pitch));
        int iy = static_cast<int>(std::floor((L.r.y - lat.y0) / lat.pitch));
        std::int32_t fill_universe = lat.outer;
        if (ix >= 0 && ix < lat.nx && iy >= 0 && iy < lat.ny) {
          const std::int32_t e =
              lat.universe[static_cast<std::size_t>(iy) *
                               static_cast<std::size_t>(lat.nx) +
                           static_cast<std::size_t>(ix)];
          if (e >= 0) fill_universe = e;
        }
        if (fill_universe < 0) return false;
        Level& next = s.level[static_cast<std::size_t>(lev + 1)];
        // Local coordinates centered on the lattice element.
        const double cx = lat.x0 + (ix + 0.5) * lat.pitch;
        const double cy = lat.y0 + (iy + 0.5) * lat.pitch;
        next.r = {L.r.x - cx, L.r.y - cy, L.r.z};
        next.u = L.u;
        // Record descent info on the *child* level so its boundary check
        // includes the element walls.
        const bool ok = locate_recursive(fill_universe, lev + 1, s);
        if (ok) {
          Level& child = s.level[static_cast<std::size_t>(lev + 1)];
          child.lattice = c.fill;
          child.ix = ix;
          child.iy = iy;
        }
        return ok;
      }
    }
  }
  return false;
}

bool Geometry::locate(Position r, Direction u, State& s) const {
  assert(root_ >= 0);
  s.n_levels = 0;
  s.material = -1;
  s.level[0].r = r;
  s.level[0].u = u;
  return locate_recursive(root_, 0, s);
}

int Geometry::find_material(Position r) const {
  State s;
  if (!locate(r, Direction{0, 0, 1}, s)) return -1;
  return s.material;
}

Geometry::Boundary Geometry::distance_to_boundary(const State& s) const {
  // Candidates within a relative tie tolerance are resolved in favor of
  // surfaces carrying a boundary condition: a root reflective/vacuum plane
  // frequently coincides exactly with a lattice element wall (e.g. the edge
  // of a reflected assembly), and transmitting through the lattice wall
  // there would step outside the geometry.
  constexpr double kTieRel = 1e-11;
  Boundary best;
  bool best_is_bc = false;

  const auto consider = [&](double d, int lev, std::int32_t surface,
                            bool is_bc) {
    if (d <= 0.0 || d == kInfDistance) return;
    const double tol = kTieRel * d;
    if (d < best.distance - tol ||
        (is_bc && !best_is_bc && d < best.distance + tol)) {
      best = Boundary{d, lev, surface};
      best_is_bc = is_bc;
    }
  };

  for (int lev = 0; lev < s.n_levels; ++lev) {
    const Level& L = s.level[static_cast<std::size_t>(lev)];
    if (L.cell >= 0) {
      const Cell& c = cells_[static_cast<std::size_t>(L.cell)];
      for (const HalfSpace& h : c.region) {
        const Surface& surf = surfaces_[static_cast<std::size_t>(h.surface)];
        const double d = surf.distance(L.r, L.u, false);
        consider(d, lev, h.surface,
                 surf.bc() != BoundaryCondition::transmission);
      }
    }
    // Lattice element walls, in element-local coordinates.
    if (L.lattice >= 0) {
      const Lattice& lat = lattices_[static_cast<std::size_t>(L.lattice)];
      const double half = 0.5 * lat.pitch;
      if (L.u.x != 0.0) {
        const double wall = L.u.x > 0.0 ? half : -half;
        consider((wall - L.r.x) / L.u.x, lev, -1, false);
      }
      if (L.u.y != 0.0) {
        const double wall = L.u.y > 0.0 ? half : -half;
        consider((wall - L.r.y) / L.u.y, lev, -1, false);
      }
    }
  }
  return best;
}

void Geometry::advance(State& s, double d) const {
  for (int lev = 0; lev < s.n_levels; ++lev) {
    Level& L = s.level[static_cast<std::size_t>(lev)];
    L.r += d * L.u;
  }
}

Geometry::CrossResult Geometry::cross(State& s, const Boundary& b) const {
  // Move to the crossing point at the root level.
  const Position start = s.level[0].r;  // known to be inside
  const Position r_root = start + b.distance * s.level[0].u;
  Direction u = s.level[0].u;

  // Grazing-crossing recovery: when the bumped point falls outside the
  // geometry, check whether this flight ALSO crossed a boundary-condition
  // surface (a lattice wall frequently coincides with a reflective plane,
  // and near-corner hits can clip two surfaces within one bump length).
  // Vacuum -> genuine leak; reflective -> mirror the position across the
  // plane, reflect the direction, and retry.
  const auto recover = [&](Position p, Direction& dir,
                           int attempts) -> CrossResult {
    for (int attempt = 0; attempt < attempts; ++attempt) {
      if (locate(p, dir, s)) {
        return CrossResult::reflected;  // caller adjusts to interior if needed
      }
      bool reflected = false;
      for (const Surface& bs : surfaces_) {
        if (bs.bc() == BoundaryCondition::transmission) continue;
        const double f_in = bs.sense(start);
        const double f_out = bs.sense(p);
        if ((f_in > 0.0) == (f_out > 0.0)) continue;  // not crossed
        if (bs.bc() == BoundaryCondition::vacuum) return CrossResult::leaked;
        // Mirror across the surface and reflect the flight direction.
        const Direction n = bs.normal(p);
        const double depth = bs.signed_distance(p);
        p = {p.x - 2.0 * depth * n.x, p.y - 2.0 * depth * n.y,
             p.z - 2.0 * depth * n.z};
        const double dot = dir.dot(n);
        dir = {dir.x - 2.0 * dot * n.x, dir.y - 2.0 * dot * n.y,
               dir.z - 2.0 * dot * n.z};
        p += kBump * dir;
        reflected = true;
        break;
      }
      if (!reflected) return CrossResult::leaked;
    }
    return CrossResult::leaked;
  };

  if (b.surface >= 0) {
    const Surface& surf = surfaces_[static_cast<std::size_t>(b.surface)];
    if (surf.bc() == BoundaryCondition::vacuum) {
      s.level[0].r = r_root;
      return CrossResult::leaked;
    }
    if (surf.bc() == BoundaryCondition::reflective) {
      // Reflect about the surface normal at the crossing point, evaluated in
      // the crossing level's local coordinates (BCs only appear at level 0
      // in practice, where local == global).
      Position r_local =
          s.level[static_cast<std::size_t>(b.level)].r +
          b.distance * s.level[static_cast<std::size_t>(b.level)].u;
      const Direction n = surf.normal(r_local);
      const double dot = u.dot(n);
      u = {u.x - 2.0 * dot * n.x, u.y - 2.0 * dot * n.y,
           u.z - 2.0 * dot * n.z};
      const Position bumped = r_root + kBump * u;
      if (!locate(bumped, u, s)) {
        Direction dir = u;
        return recover(bumped, dir, 4);
      }
      return CrossResult::reflected;
    }
  }
  // Transmission (interior surface or lattice wall): bump past and relocate.
  const Position bumped = r_root + kBump * u;
  if (!locate(bumped, u, s)) {
    Direction dir = u;
    const CrossResult r = recover(bumped, dir, 4);
    // A successful recovery reflected off a boundary; report it as such so
    // callers refresh the particle direction.
    return r;
  }
  return CrossResult::interior;
}

}  // namespace vmc::geom
