// Constructive solid geometry with universes and rectangular lattices —
// the tracking substrate for the Hoogenboom-Martin full-core PWR model
// (core lattice of assemblies -> assembly lattice of pins -> pin cells).
//
// Tracking strategy: cells are intersections of half-spaces; nested
// universes/lattices are handled with a coordinate-level stack exactly like
// OpenMC. After every boundary crossing the particle is re-located from the
// root with a small positional bump past the surface; this trades a little
// speed for robustness (no neighbor lists to maintain) and is documented in
// DESIGN.md as an implementation simplification that does not change the
// memory/branch character the paper measures.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geom/surface.hpp"

namespace vmc::geom {

struct HalfSpace {
  std::int32_t surface;
  bool positive;  // true: f(p) > 0 side
};

enum class FillType : unsigned char { material, universe, lattice };

struct Cell {
  std::vector<HalfSpace> region;  // intersection; empty = everywhere
  FillType fill_type = FillType::material;
  std::int32_t fill = -1;  // material id, universe id, or lattice id
};

struct Universe {
  std::vector<std::int32_t> cells;
};

/// Rectangular 2D lattice (infinite in z), pitch-aligned with x/y axes.
/// Element (ix, iy) spans [x0 + ix*pitch, x0 + (ix+1)*pitch) x [...].
/// Element universes use local coordinates centered on the element.
struct Lattice {
  int nx = 0;
  int ny = 0;
  double pitch = 0.0;
  double x0 = 0.0;  // lower-left corner
  double y0 = 0.0;
  std::vector<std::int32_t> universe;  // [iy*nx + ix]; -1 -> outer
  std::int32_t outer = -1;             // universe outside the map / in holes
};

class Geometry {
 public:
  static constexpr int kMaxLevels = 8;

  int add_surface(Surface s);
  int add_cell(Cell c);
  int add_universe(Universe u);
  int add_lattice(Lattice l);
  void set_root(int universe) { root_ = universe; }

  Surface& surface(int i) { return surfaces_[static_cast<std::size_t>(i)]; }
  const Surface& surface(int i) const {
    return surfaces_[static_cast<std::size_t>(i)];
  }
  const Cell& cell(int i) const { return cells_[static_cast<std::size_t>(i)]; }
  int n_cells() const { return static_cast<int>(cells_.size()); }
  int n_surfaces() const { return static_cast<int>(surfaces_.size()); }

  /// One level of the coordinate stack.
  struct Level {
    Position r;
    Direction u;
    std::int32_t universe = -1;
    std::int32_t cell = -1;    // cell (global id) containing r in `universe`
    std::int32_t lattice = -1; // lattice this level descended through, or -1
    int ix = -1, iy = -1;      // lattice element indices when lattice >= 0
  };

  /// Located particle: coordinate stack + resolved material.
  struct State {
    int n_levels = 0;
    std::array<Level, kMaxLevels> level;
    std::int32_t material = -1;

    Position position() const { return level[0].r; }
    Direction direction() const { return level[0].u; }

    /// Update the flight direction at every coordinate level (levels are
    /// related by translations only, so directions coincide).
    void set_direction(Direction u) {
      for (int i = 0; i < n_levels; ++i) level[static_cast<std::size_t>(i)].u = u;
    }
  };

  /// Locate a (position, direction) from the root universe. Returns false if
  /// the point is outside the geometry.
  bool locate(Position r, Direction u, State& s) const;

  /// Convenience: material at a point, or -1 outside.
  int find_material(Position r) const;

  /// Nearest boundary along the current direction.
  struct Boundary {
    double distance = kInfDistance;
    int level = -1;              // coordinate level of the crossing
    std::int32_t surface = -1;   // crossed surface id, or -1 for lattice wall
  };
  Boundary distance_to_boundary(const State& s) const;

  enum class CrossResult : unsigned char { interior, reflected, leaked };

  /// Advance the particle by `b.distance`, cross the boundary, apply any
  /// boundary condition, and re-locate. On `leaked` the state is stale.
  CrossResult cross(State& s, const Boundary& b) const;

  /// Advance by `d` (a collision site strictly inside the current cell).
  void advance(State& s, double d) const;

 private:
  bool cell_contains(const Cell& c, Position r) const;
  /// Descend from `universe` filling levels starting at `lev`.
  bool locate_recursive(int universe, int lev, State& s) const;

  std::vector<Surface> surfaces_;
  std::vector<Cell> cells_;
  std::vector<Universe> universes_;
  std::vector<Lattice> lattices_;
  int root_ = -1;
};

}  // namespace vmc::geom
