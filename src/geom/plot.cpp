#include "geom/plot.hpp"

#include <stdexcept>

namespace vmc::geom {

std::vector<int> material_slice(const Geometry& g, double z, Position lo,
                                Position hi, int nx, int ny) {
  if (nx <= 0 || ny <= 0) throw std::invalid_argument("raster must be positive");
  std::vector<int> out(static_cast<std::size_t>(nx) *
                       static_cast<std::size_t>(ny));
  const double dx = (hi.x - lo.x) / nx;
  const double dy = (hi.y - lo.y) / ny;
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const Position p{lo.x + (ix + 0.5) * dx, lo.y + (iy + 0.5) * dy, z};
      out[static_cast<std::size_t>(iy) * static_cast<std::size_t>(nx) +
          static_cast<std::size_t>(ix)] = g.find_material(p);
    }
  }
  return out;
}

std::string ascii_slice(const Geometry& g, double z, Position lo, Position hi,
                        int nx, int ny, const std::string& palette) {
  const std::vector<int> slice = material_slice(g, z, lo, hi, nx, ny);
  std::string out;
  out.reserve(static_cast<std::size_t>((nx + 1) * ny));
  for (int iy = ny - 1; iy >= 0; --iy) {  // top row first
    for (int ix = 0; ix < nx; ++ix) {
      const int m = slice[static_cast<std::size_t>(iy) *
                              static_cast<std::size_t>(nx) +
                          static_cast<std::size_t>(ix)];
      out.push_back(m < 0 ? ' '
                          : palette[static_cast<std::size_t>(m) %
                                    palette.size()]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace vmc::geom
