// Quadric surfaces for CSG tracking: axis-aligned planes and z-cylinders —
// the complete set the Hoogenboom-Martin PWR model needs.
#pragma once

#include <limits>

#include "geom/vec3.hpp"

namespace vmc::geom {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Boundary condition attached to a surface (only meaningful on the outer
/// boundary of the root universe).
enum class BoundaryCondition : unsigned char {
  transmission,  // interior surface
  vacuum,        // particle leaks
  reflective,    // specular reflection
};

class Surface {
 public:
  enum class Kind : unsigned char {
    xplane,
    yplane,
    zplane,
    xcylinder,
    ycylinder,
    zcylinder,
    sphere,
  };

  static Surface x_plane(double x0) { return Surface(Kind::xplane, x0, 0, 0); }
  static Surface y_plane(double y0) { return Surface(Kind::yplane, y0, 0, 0); }
  static Surface z_plane(double z0) { return Surface(Kind::zplane, z0, 0, 0); }
  /// Infinite cylinder parallel to x through (y0, z0) with radius r.
  static Surface x_cylinder(double y0, double z0, double r) {
    return Surface(Kind::xcylinder, y0, z0, r);
  }
  /// Infinite cylinder parallel to y through (x0, z0) with radius r.
  static Surface y_cylinder(double x0, double z0, double r) {
    return Surface(Kind::ycylinder, x0, z0, r);
  }
  /// Infinite cylinder parallel to z through (x0, y0) with radius r.
  static Surface z_cylinder(double x0, double y0, double r) {
    return Surface(Kind::zcylinder, x0, y0, r);
  }
  /// Sphere centered at (x0, y0, z0) with radius r.
  static Surface sphere(double x0, double y0, double z0, double r) {
    Surface s(Kind::sphere, x0, y0, z0);
    s.r_ = r;
    return s;
  }

  Kind kind() const { return kind_; }
  BoundaryCondition bc() const { return bc_; }
  void set_bc(BoundaryCondition bc) { bc_ = bc; }

  /// Signed sense function f(p): positive half-space is f > 0.
  double sense(Position p) const;

  /// Signed geometric distance to the surface (same sign convention as
  /// sense); used to mirror a point across the surface.
  double signed_distance(Position p) const;

  /// Distance along `u` from `p` to the surface; kInfDistance if no positive
  /// crossing. `coincident` indicates the particle currently sits on this
  /// surface (suppresses the zero root).
  double distance(Position p, Direction u, bool coincident) const;

  /// Outward unit normal at point p (for reflective boundaries).
  Direction normal(Position p) const;

 private:
  Surface(Kind k, double a, double b, double c)
      : kind_(k), a_(a), b_(b), c_(c) {}

  Kind kind_;
  BoundaryCondition bc_ = BoundaryCondition::transmission;
  double a_, b_, c_;
  double r_ = 0.0;  // sphere radius (cylinders keep theirs in c_)
};

}  // namespace vmc::geom
