// Minimal fork-join helper for the generation loop.
//
// OpenMC's shared-memory layer is OpenMP; VectorMC uses plain std::thread
// with a static chunk decomposition, which is what `#pragma omp parallel for
// schedule(static)` over particles amounts to. The thread count is a runtime
// setting so the same binary models "CPU with 32 threads" and "MIC with 244
// threads" style configurations.
#pragma once

#include <cstddef>
#include <thread>
#include <vector>

namespace vmc::core {

/// Invoke fn(thread_index, begin, end) on `n_threads` threads over a static
/// partition of [0, n_items). fn must be thread-safe across disjoint ranges.
/// n_threads <= 1 runs inline (no thread spawn).
template <class Fn>
void parallel_chunks(int n_threads, std::size_t n_items, Fn&& fn) {
  if (n_threads <= 1 || n_items == 0) {
    fn(0, std::size_t{0}, n_items);
    return;
  }
  const std::size_t nt = static_cast<std::size_t>(n_threads);
  std::vector<std::thread> threads;
  threads.reserve(nt);
  const std::size_t chunk = (n_items + nt - 1) / nt;
  for (std::size_t t = 0; t < nt; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = begin + chunk < n_items ? begin + chunk : n_items;
    if (begin >= end) break;
    threads.emplace_back([&fn, t, begin, end] {
      fn(static_cast<int>(t), begin, end);
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace vmc::core
