#include "core/statepoint.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace vmc::core {

namespace {

constexpr char kMagic[4] = {'V', 'M', 'C', 'S'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <class T>
void write_pod(std::FILE* f, const T& v) {
  if (std::fwrite(&v, sizeof(T), 1, f) != 1) {
    throw std::runtime_error("statepoint write failed");
  }
}

template <class T>
T read_pod(std::FILE* f) {
  T v;
  if (std::fread(&v, sizeof(T), 1, f) != 1) {
    throw std::runtime_error("statepoint truncated");
  }
  return v;
}

}  // namespace

bool StatePoint::operator==(const StatePoint& o) const {
  if (seed != o.seed || resample_state != o.resample_state ||
      generations_completed != o.generations_completed ||
      k_history != o.k_history || source.size() != o.source.size()) {
    return false;
  }
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i].r.x != o.source[i].r.x || source[i].r.y != o.source[i].r.y ||
        source[i].r.z != o.source[i].r.z ||
        source[i].energy != o.source[i].energy) {
      return false;
    }
  }
  return true;
}

void write_statepoint(const std::string& path, const StatePoint& sp) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("cannot open statepoint for writing: " + path);
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) {
    throw std::runtime_error("statepoint write failed");
  }
  write_pod(f.get(), kVersion);
  write_pod(f.get(), sp.seed);
  write_pod(f.get(), sp.resample_state);
  write_pod(f.get(), sp.generations_completed);
  write_pod(f.get(), static_cast<std::uint64_t>(sp.k_history.size()));
  write_pod(f.get(), static_cast<std::uint64_t>(sp.source.size()));
  for (const double k : sp.k_history) write_pod(f.get(), k);
  for (const auto& s : sp.source) {
    write_pod(f.get(), s.r.x);
    write_pod(f.get(), s.r.y);
    write_pod(f.get(), s.r.z);
    write_pod(f.get(), s.energy);
  }
  if (std::fflush(f.get()) != 0) {
    throw std::runtime_error("statepoint flush failed");
  }
}

StatePoint read_statepoint(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open statepoint: " + path);
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("not a VectorMC statepoint: " + path);
  }
  const auto version = read_pod<std::uint32_t>(f.get());
  if (version != kVersion) {
    throw std::runtime_error("unsupported statepoint version");
  }
  StatePoint sp;
  sp.seed = read_pod<std::uint64_t>(f.get());
  sp.resample_state = read_pod<std::uint64_t>(f.get());
  sp.generations_completed = read_pod<std::int32_t>(f.get());
  const auto nk = read_pod<std::uint64_t>(f.get());
  const auto ns = read_pod<std::uint64_t>(f.get());
  sp.k_history.reserve(nk);
  for (std::uint64_t i = 0; i < nk; ++i) {
    sp.k_history.push_back(read_pod<double>(f.get()));
  }
  sp.source.reserve(ns);
  for (std::uint64_t i = 0; i < ns; ++i) {
    particle::FissionSite s;
    s.r.x = read_pod<double>(f.get());
    s.r.y = read_pod<double>(f.get());
    s.r.z = read_pod<double>(f.get());
    s.energy = read_pod<double>(f.get());
    sp.source.push_back(s);
  }
  return sp;
}

}  // namespace vmc::core
