#include "core/statepoint.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "resil/crc32.hpp"
#include "resil/fault.hpp"

namespace vmc::core {

namespace {

constexpr char kMagic[4] = {'V', 'M', 'C', 'S'};
constexpr std::uint32_t kVersion = 2;

// magic + version + seed + resample_state + generations + nk + ns.
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 8 + 8 + 4 + 8 + 8;
constexpr std::uint64_t kSiteBytes = 4 * sizeof(double);
constexpr std::uint64_t kCrcBytes = sizeof(std::uint32_t);

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

// Every byte written also feeds the running CRC, so the checksum covers
// exactly what lands in the file.
struct CheckedWriter {
  std::FILE* f;
  resil::Crc32 crc;

  void write(const void* p, std::size_t n) {
    if (std::fwrite(p, 1, n, f) != n) {
      throw std::runtime_error("statepoint write failed");
    }
    crc.update(p, n);
  }
  template <class T>
  void write_pod(const T& v) {
    write(&v, sizeof(T));
  }
};

struct CheckedReader {
  std::FILE* f;
  resil::Crc32 crc;

  void read(void* p, std::size_t n) {
    if (std::fread(p, 1, n, f) != n) {
      throw std::runtime_error("statepoint truncated");
    }
    crc.update(p, n);
  }
  template <class T>
  T read_pod() {
    T v;
    read(&v, sizeof(T));
    return v;
  }
};

std::uint64_t file_size(std::FILE* f) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    throw std::runtime_error("statepoint seek failed");
  }
  const long size = std::ftell(f);
  if (size < 0) throw std::runtime_error("statepoint size query failed");
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    throw std::runtime_error("statepoint seek failed");
  }
  return static_cast<std::uint64_t>(size);
}

}  // namespace

bool StatePoint::operator==(const StatePoint& o) const {
  if (seed != o.seed || resample_state != o.resample_state ||
      generations_completed != o.generations_completed ||
      k_history != o.k_history || source.size() != o.source.size()) {
    return false;
  }
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i].r.x != o.source[i].r.x || source[i].r.y != o.source[i].r.y ||
        source[i].r.z != o.source[i].r.z ||
        source[i].energy != o.source[i].energy) {
      return false;
    }
  }
  return true;
}

void write_statepoint(const std::string& path, const StatePoint& sp) {
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    if (!f) {
      throw std::runtime_error("cannot open statepoint for writing: " + tmp);
    }
    CheckedWriter w{f.get(), {}};
    w.write(kMagic, 4);
    w.write_pod(kVersion);
    w.write_pod(sp.seed);
    w.write_pod(sp.resample_state);
    w.write_pod(sp.generations_completed);
    w.write_pod(static_cast<std::uint64_t>(sp.k_history.size()));
    w.write_pod(static_cast<std::uint64_t>(sp.source.size()));
    for (const double k : sp.k_history) w.write_pod(k);

    // Injected crash: the process "dies" after the header and k history but
    // before the bank and CRC make it out — a torn .tmp file is left behind,
    // exactly what a power cut mid-checkpoint produces. The atomic-rename
    // protocol below must keep `path` (the last good checkpoint) valid.
    if (resil::fault_fires("statepoint.write")) {
      std::fflush(f.get());
      throw std::runtime_error("statepoint write failed: injected crash (" +
                               tmp + " left torn)");
    }

    for (const auto& s : sp.source) {
      w.write_pod(s.r.x);
      w.write_pod(s.r.y);
      w.write_pod(s.r.z);
      w.write_pod(s.energy);
    }
    const std::uint32_t crc = w.crc.value();
    if (std::fwrite(&crc, sizeof(crc), 1, f.get()) != 1) {
      throw std::runtime_error("statepoint write failed");
    }
    if (std::fflush(f.get()) != 0) {
      throw std::runtime_error("statepoint flush failed");
    }
    // Durability before the rename: the tmp file's bytes must be on disk
    // before it can replace the last good checkpoint.
    if (::fsync(::fileno(f.get())) != 0) {
      throw std::runtime_error("statepoint fsync failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("statepoint rename failed: " + tmp + " -> " +
                             path);
  }
}

StatePoint read_statepoint(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open statepoint: " + path);
  const std::uint64_t size = file_size(f.get());
  if (size < kHeaderBytes + kCrcBytes) {
    throw std::runtime_error("statepoint truncated: " + path);
  }

  CheckedReader r{f.get(), {}};
  char magic[4];
  r.read(magic, 4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("not a VectorMC statepoint: " + path);
  }
  const auto version = r.read_pod<std::uint32_t>();
  if (version != kVersion) {
    throw std::runtime_error("unsupported statepoint version");
  }
  StatePoint sp;
  sp.seed = r.read_pod<std::uint64_t>();
  sp.resample_state = r.read_pod<std::uint64_t>();
  sp.generations_completed = r.read_pod<std::int32_t>();
  const auto nk = r.read_pod<std::uint64_t>();
  const auto ns = r.read_pod<std::uint64_t>();

  // Bounds-check the header counts against the actual file size BEFORE
  // trusting them: a bit flip in nk/ns must not drive a multi-gigabyte
  // reserve or a silent short read. The expected size must match exactly —
  // a longer file means trailing garbage (torn rename, concatenated junk)
  // and is rejected just like truncation.
  const std::uint64_t body = size - kHeaderBytes - kCrcBytes;
  if (nk > body / sizeof(double) ||
      ns > (body - nk * sizeof(double)) / kSiteBytes ||
      kHeaderBytes + nk * sizeof(double) + ns * kSiteBytes + kCrcBytes !=
          size) {
    throw std::runtime_error(
        "statepoint header counts inconsistent with file size: " + path);
  }

  sp.k_history.reserve(nk);
  for (std::uint64_t i = 0; i < nk; ++i) {
    sp.k_history.push_back(r.read_pod<double>());
  }
  sp.source.reserve(ns);
  for (std::uint64_t i = 0; i < ns; ++i) {
    particle::FissionSite s;
    s.r.x = r.read_pod<double>();
    s.r.y = r.read_pod<double>();
    s.r.z = r.read_pod<double>();
    s.energy = r.read_pod<double>();
    sp.source.push_back(s);
  }
  const std::uint32_t expected = r.crc.value();
  std::uint32_t stored = 0;
  if (std::fread(&stored, sizeof(stored), 1, f.get()) != 1) {
    throw std::runtime_error("statepoint truncated: " + path);
  }
  if (stored != expected) {
    throw std::runtime_error("statepoint CRC mismatch (corrupt file): " +
                             path);
  }
  return sp;
}

}  // namespace vmc::core
