// Compacting event-queue scheduler state for the banked transport hot path.
//
// The naive banked sweep (EventTracker with compact_queues=off) rebuilds its
// alive list, re-sorts it, and re-buckets particles by material from scratch
// every iteration — per-iteration work that scales with bookkeeping, not
// physics. The queue scheduler keeps ONE persistent live queue across
// iterations and derives everything else from it in O(live):
//
//   * live queue      — particle indices, ascending, compacted in place each
//                       iteration (stable, so the ascending order and hence
//                       the tally accumulation order never change);
//   * lookup queue    — the live set counting-sorted by material, so the
//                       SIMD nuclide loop sweeps contiguous same-material
//                       runs of the staging buffers instead of re-bucketing
//                       into per-material scratch vectors;
//   * staging buffers — 64-byte-aligned SoA energy/result arrays in lookup
//                       order, reused across iterations (capacity only ever
//                       grows to the initial bank size);
//   * collide queue   — live-queue slots that sampled a collision this
//                       iteration (the scalar physics stage's work list).
//
// Why compaction preserves the bit-exact event ≡ history equivalence: each
// particle owns a private RNG stream, so only the per-particle ORDER of
// draws matters, never the interleaving across particles — and a stable
// compaction removes dead entries without reordering survivors, so every
// stage still walks live particles in ascending index order, consuming each
// particle's stream in exactly the history tracker's sequence and summing
// tally contributions in exactly the naive sweep's order. See DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "geom/geometry.hpp"
#include "particle/particle.hpp"
#include "simd/aligned.hpp"
#include "xsdata/types.hpp"

namespace vmc::core {

/// One contiguous same-material segment [begin, end) of the lookup queue /
/// staging buffers. The offload pipeline banks these runs directly.
struct MaterialRun {
  int material = -1;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

class EventQueues {
 public:
  /// Start a fresh transport run: empty live queue, per-material counters
  /// sized, staging capacity reserved for `n_particles`.
  void reset(int n_materials, std::size_t n_particles);

  /// Seed one live particle (call in ascending index order).
  void push_live(std::uint32_t particle_index) { live_.push_back(particle_index); }

  std::span<const std::uint32_t> live() const { return live_; }
  std::size_t live_count() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

  /// Counting-sort the live set by material (stable: within a material,
  /// ascending particle order) and gather energies into the staging buffer.
  /// O(live + n_materials).
  void build_lookup(std::span<const particle::Particle> particles,
                    std::span<const geom::Geometry::State> states);

  // Lookup-order views, valid after build_lookup() until the next compact().
  std::span<const MaterialRun> runs() const { return runs_; }

  /// Stream the material runs to a scheduler as bounded same-material chunks
  /// of at most `per` staging slots, in lookup order, without materializing
  /// an intermediate chunk vector: fn(material, begin, end) with
  /// [begin, end) indexing the staging buffers. A run never spans a chunk
  /// boundary, so consumers bank one contiguous same-material slice per
  /// call. Returns the number of chunks handed off.
  std::size_t hand_off_runs(
      std::size_t per,
      const std::function<void(int, std::size_t, std::size_t)>& fn) const;
  std::span<const std::uint32_t> lookup() const { return lookup_; }
  std::span<const double> staged_energies() const { return e_stage_; }
  std::span<const std::int32_t> staged_materials() const { return mat_stage_; }
  std::span<xs::XsSet> staged_sigma() { return sigma_stage_; }

  /// Cross-section result for live-queue slot `slot` (routed through the
  /// live→lookup permutation, so nothing is scattered back per particle).
  const xs::XsSet& sigma_of_live(std::size_t slot) const {
    return sigma_stage_[pos_[slot]];
  }

  // Distance-stage SoA buffers, live order, reused across iterations.
  simd::aligned_vector<double>& xi() { return xi_; }
  simd::aligned_vector<double>& sig_total() { return sig_total_; }
  simd::aligned_vector<double>& dist() { return dist_; }

  /// Live-queue slots that collide this iteration (stage-4 work list).
  std::vector<std::uint32_t>& collide() { return collide_; }

  /// Arm a new iteration: clear death marks and the collide queue.
  void begin_iteration();

  /// Mark live-queue slot `slot` dead; removed by the next compact().
  void mark_dead(std::size_t slot) { dead_[slot] = 1; }

  /// Stable in-place removal of dead entries. Survivors keep their relative
  /// (ascending) order; returns the new live count.
  std::size_t compact();

 private:
  std::vector<std::uint32_t> live_;        // ascending particle indices
  std::vector<unsigned char> dead_;        // per-live-slot death marks
  std::vector<std::uint32_t> collide_;     // live slots colliding this iter

  std::vector<std::uint32_t> lookup_;      // material-major particle indices
  std::vector<std::uint32_t> pos_;         // live slot -> lookup slot
  std::vector<std::uint32_t> mat_count_;   // per-material counting-sort bins
  std::vector<MaterialRun> runs_;          // contiguous same-material spans
  simd::aligned_vector<double> e_stage_;   // energies, lookup order
  std::vector<std::int32_t> mat_stage_;    // material id, lookup order
  std::vector<xs::XsSet> sigma_stage_;     // lookup results, lookup order

  simd::aligned_vector<double> xi_, sig_total_, dist_;  // live order
};

}  // namespace vmc::core
