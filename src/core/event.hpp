// Event-based ("banking") transport: all in-flight particles advance through
// the same event stage in lockstep, so each homogeneous stage can be swept
// with a vector loop [Troubetzkoy 1973; Brown & Martin 1984].
//
// Stages per iteration:
//   1. banked cross-section lookups (bucketed by material, SIMD inner
//      nuclide loop — the paper's Algorithm 2),
//   2. banked distance-to-collision sampling (vectorized -log(xi)/Sigma,
//      the paper's Algorithm 4),
//   3. per-particle geometry advance/crossing (scalar: irregular),
//   4. per-particle collision physics (scalar; vector-friendly physics
//      settings drop URR/S(a,b) exactly as the paper's micro-benchmarks do).
//
// Each particle consumes its private RNG stream in the same order the
// history tracker does, so with the SIMD stages disabled the two methods
// produce bit-identical particle fates (tested); with SIMD enabled results
// agree statistically.
#pragma once

#include <span>
#include <vector>

#include "core/mesh_tally.hpp"
#include "core/tally.hpp"
#include "geom/geometry.hpp"
#include "particle/particle.hpp"
#include "physics/collision.hpp"
#include "prof/profiler.hpp"
#include "xsdata/library.hpp"

namespace vmc::core {

struct EventOptions {
  bool simd_lookup = true;    // banked SIMD lookup vs. scalar banked loop
  bool simd_distance = true;  // vectorized log vs. std::log
  /// Compacting event-queue scheduler (src/core/event_queue.hpp): persistent
  /// live queue with stable in-place dead-particle compaction, counting-sort
  /// material runs, reusable SoA staging. Off = the naive full-bank sweep
  /// that re-buckets and re-sorts every iteration (kept as the ablation
  /// baseline for bench/abl_kernels). Both settings produce bit-identical
  /// particle fates and tallies when the SIMD stages are disabled (tested);
  /// with simd_distance on, the sub-vector remainder differs (masked vlog
  /// vs. scalar std::log tail) and agreement is statistical.
  bool compact_queues = true;
  /// Grid-search tier for the xs stage (GridSearch::hash by default; ::binary
  /// is the ablation baseline). Hash selects bit-identical union intervals,
  /// so every event/history equivalence above is preserved (tested).
  xs::XsLookupOptions lookup{};
  double nu_bar = 2.43;
  int max_iterations = 1 << 20;
  bool profile = false;
};

class EventTracker {
 public:
  using Options = EventOptions;

  EventTracker(const geom::Geometry& geometry, const xs::Library& lib,
               const physics::Collision& coll, Options opt = {});

  /// Simulate every particle in `particles` to death.
  void run(std::span<particle::Particle> particles, TallyScores& tally,
           EventCounts& counts, std::vector<particle::FissionSite>& bank,
           MeshTally* mesh = nullptr) const;

  const Options& options() const { return opt_; }

 private:
  void run_naive(std::span<particle::Particle> particles, TallyScores& tally,
                 EventCounts& counts, std::vector<particle::FissionSite>& bank,
                 MeshTally* mesh) const;
  void run_compact(std::span<particle::Particle> particles, TallyScores& tally,
                   EventCounts& counts,
                   std::vector<particle::FissionSite>& bank,
                   MeshTally* mesh) const;

  const geom::Geometry& geometry_;
  const xs::Library& lib_;
  const physics::Collision& coll_;
  Options opt_;
  prof::TimerHandle t_xs_, t_dist_, t_advance_, t_collide_;
};

}  // namespace vmc::core
