#include "core/history.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/simd.hpp"
#include "xsdata/lookup.hpp"

namespace vmc::core {

namespace {
constexpr double kEnergyFloor = 1.0e-11;  // MeV; below this the history ends
}

HistoryTracker::HistoryTracker(const geom::Geometry& geometry,
                               const xs::Library& lib,
                               const physics::Collision& coll,
                               TrackerOptions opt)
    : geometry_(geometry),
      lib_(lib),
      coll_(coll),
      opt_(opt),
      t_xs_(prof::registry().handle("calculate_xs")),
      t_boundary_(prof::registry().handle("distance_to_boundary")),
      t_collide_(prof::registry().handle("collide")),
      t_cross_(prof::registry().handle("cross_surface")) {}

void HistoryTracker::track(particle::Particle& p, TallyScores& tally,
                           EventCounts& counts,
                           std::vector<particle::FissionSite>& bank,
                           MeshTally* mesh) const {
  geom::Geometry::State gs;
  if (!geometry_.locate(p.r, p.u, gs)) {
    // Born outside the geometry: immediate leak.
    tally.leakage += p.weight;
    p.alive = false;
    counts.histories += 1;
    return;
  }

  counts.histories += 1;
  const bool profile = opt_.profile;
  auto& reg = prof::registry();
  // One span per history (not per event — a history is the natural unit at
  // which the trace stays readable and the ring does not flood).
  obs::Tracer::Scope span(obs::tracer(), "history", "core");
  const std::uint64_t lookups0 = counts.lookups;

  for (int event = 0; p.alive && event < opt_.max_events; ++event) {
    // --- macroscopic cross section (the bottleneck; Algorithm 1) ---------
    if (profile) reg.start(t_xs_);
    const xs::XsSet sigma = xs::macro_xs_history(lib_, gs.material, p.energy);
    if (profile) reg.stop(t_xs_);
    counts.lookups += 1;
    counts.nuclide_terms += lib_.material(gs.material).size();

    // --- distance to collision, Eq. (1) -----------------------------------
    const double xi = p.stream.next();
    counts.rng_draws_est += 1;
    const double d_coll =
        sigma.total > 0.0 ? -std::log(xi) / sigma.total : geom::kInfDistance;

    // --- distance to boundary ---------------------------------------------
    if (profile) reg.start(t_boundary_);
    const geom::Geometry::Boundary b = geometry_.distance_to_boundary(gs);
    if (profile) reg.stop(t_boundary_);

    const double d = d_coll < b.distance ? d_coll : b.distance;
    // Track-length estimators score over the full flight segment.
    tally.track_length += p.weight * d;
    tally.k_tracklength += p.weight * d * opt_.nu_bar * sigma.fission;

    if (d_coll < b.distance) {
      // ----- collision -----------------------------------------------------
      geometry_.advance(gs, d_coll);
      p.r = gs.position();
      counts.collisions += 1;
      p.n_collisions += 1;
      tally.collision += p.weight;
      if (sigma.total > 0.0) {
        tally.k_collision +=
            p.weight * opt_.nu_bar * sigma.fission / sigma.total;
      }
      if (mesh != nullptr) {
        mesh->score_collision(p.r, p.energy, p.weight, sigma.total,
                              opt_.nu_bar * sigma.fission);
      }

      if (opt_.survival_biasing && sigma.total > 0.0) {
        // ---- implicit capture (variance reduction) ----------------------
        // Expected fission production is banked continuously; the absorbed
        // weight fraction is deposited; the survivor always scatters.
        const double production =
            p.weight * opt_.nu_bar * sigma.fission / sigma.total;
        const int nsites = static_cast<int>(production + p.stream.next());
        for (int i = 0; i < nsites; ++i) {
          bank.push_back(
              particle::FissionSite{p.r, rng::sample_watt(p.stream)});
        }
        const double f_abs = sigma.absorption / sigma.total;
        tally.absorption += p.weight * f_abs;
        tally.k_absorption += production;  // = absorbed wgt * nu sig_f/sig_a
        p.weight *= 1.0 - f_abs;

        if (profile) reg.start(t_collide_);
        const physics::CollisionResult res =
            coll_.force_scatter(gs.material, p.energy, p.u, sigma, p.stream);
        if (profile) reg.stop(t_collide_);
        counts.rng_draws_est += 4;
        p.energy = res.energy;
        p.u = res.direction;
        gs.set_direction(p.u);
        if (p.energy <= kEnergyFloor) p.alive = false;

        // Russian roulette below the weight cutoff.
        if (p.alive && p.weight < opt_.weight_cutoff) {
          if (p.stream.next() < p.weight / opt_.weight_survival) {
            p.weight = opt_.weight_survival;
          } else {
            p.alive = false;
          }
        }
        continue;
      }

      if (profile) reg.start(t_collide_);
      const physics::CollisionResult res =
          coll_.collide(gs.material, p.energy, p.u, sigma, p.stream);
      if (profile) reg.stop(t_collide_);
      counts.rng_draws_est += 4;

      switch (res.type) {
        case physics::CollisionType::scatter:
          p.energy = res.energy;
          p.u = res.direction;
          gs.set_direction(p.u);
          if (p.energy <= kEnergyFloor) p.alive = false;
          break;
        case physics::CollisionType::capture:
          tally.absorption += p.weight;
          if (sigma.absorption > 0.0) {
            tally.k_absorption +=
                p.weight * opt_.nu_bar * sigma.fission / sigma.absorption;
          }
          p.alive = false;
          break;
        case physics::CollisionType::fission: {
          tally.absorption += p.weight;
          if (sigma.absorption > 0.0) {
            tally.k_absorption +=
                p.weight * opt_.nu_bar * sigma.fission / sigma.absorption;
          }
          for (int i = 0; i < res.n_fission_neutrons; ++i) {
            bank.push_back(particle::FissionSite{
                p.r, rng::sample_watt(p.stream)});
          }
          p.alive = false;
          break;
        }
      }
    } else {
      // ----- boundary crossing ---------------------------------------------
      counts.crossings += 1;
      p.n_crossings += 1;
      if (profile) reg.start(t_cross_);
      const geom::Geometry::CrossResult cr = geometry_.cross(gs, b);
      if (profile) reg.stop(t_cross_);
      if (cr == geom::Geometry::CrossResult::leaked) {
        tally.leakage += p.weight;
        p.alive = false;
      } else {
        p.r = gs.position();
        p.u = gs.direction();
      }
    }
  }
  p.alive = false;  // max_events cap (pathological histories)

  static const obs::Counter c_hist = obs::metrics().counter(
      "vmc_histories_total", {{"method", "history"}},
      "Histories completed per transport method");
  static const obs::Counter c_lookups = obs::metrics().counter(
      "vmc_xs_lookups_total",
      {{"method", "history"}, {"isa", simd::dispatch().name}},
      "Macroscopic cross-section lookups per transport method");
  c_hist.inc();
  c_lookups.inc(counts.lookups - lookups0);
}

}  // namespace vmc::core
