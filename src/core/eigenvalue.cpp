#include "core/eigenvalue.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "core/parallel.hpp"
#include "core/statepoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "particle/concurrent_bank.hpp"
#include "prof/profiler.hpp"

namespace vmc::core {

Simulation::Simulation(const geom::Geometry& geometry, const xs::Library& lib,
                       Settings settings)
    : geometry_(geometry),
      lib_(lib),
      settings_(settings),
      collision_(lib, settings.physics),
      history_(geometry, lib, collision_, settings.tracker),
      event_(geometry, lib, collision_, settings.event) {
  if (!lib.finalized()) throw std::logic_error("library not finalized");
}

std::vector<particle::FissionSite> Simulation::initial_source() const {
  // Which materials can fission?
  std::vector<bool> fissionable(static_cast<std::size_t>(lib_.n_materials()),
                                false);
  for (int m = 0; m < lib_.n_materials(); ++m) {
    for (const auto id : lib_.material(m).nuclides) {
      if (lib_.nuclide(id).fissionable) {
        fissionable[static_cast<std::size_t>(m)] = true;
        break;
      }
    }
  }

  rng::Stream s(settings_.seed ^ 0x5150c0ffeeULL);
  std::vector<particle::FissionSite> src;
  src.reserve(settings_.n_particles);
  const geom::Position lo = settings_.source_lo;
  const geom::Position hi = settings_.source_hi;
  const std::size_t max_tries = 10000 * settings_.n_particles + 100000;
  std::size_t tries = 0;
  while (src.size() < settings_.n_particles) {
    if (++tries > max_tries) {
      throw std::runtime_error(
          "initial source sampling failed: no fissionable material found in "
          "the source box");
    }
    geom::Position r{lo.x + s.next() * (hi.x - lo.x),
                     lo.y + s.next() * (hi.y - lo.y),
                     lo.z + s.next() * (hi.z - lo.z)};
    const int mat = geometry_.find_material(r);
    if (mat < 0 || !fissionable[static_cast<std::size_t>(mat)]) continue;
    src.push_back(particle::FissionSite{r, rng::sample_watt(s)});
  }
  return src;
}

std::vector<particle::FissionSite> resample_bank(
    const std::vector<particle::FissionSite>& bank, std::size_t n,
    rng::Stream& stream) {
  if (bank.empty()) {
    throw std::runtime_error("fission bank empty: system far subcritical?");
  }
  std::vector<particle::FissionSite> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = std::min<std::size_t>(
        bank.size() - 1,
        static_cast<std::size_t>(stream.next() * static_cast<double>(bank.size())));
    out.push_back(bank[j]);
  }
  return out;
}

double Simulation::shannon_entropy(
    const std::vector<particle::FissionSite>& sites) const {
  if (sites.empty()) return 0.0;
  const int m = settings_.entropy_mesh;
  const geom::Position lo = settings_.source_lo;
  const geom::Position hi = settings_.source_hi;
  std::vector<std::uint32_t> bins(
      static_cast<std::size_t>(m) * static_cast<std::size_t>(m) *
          static_cast<std::size_t>(m),
      0);
  const auto bin_of = [&](double x, double a, double b) {
    int i = static_cast<int>((x - a) / (b - a) * m);
    return std::clamp(i, 0, m - 1);
  };
  for (const auto& site : sites) {
    const int ix = bin_of(site.r.x, lo.x, hi.x);
    const int iy = bin_of(site.r.y, lo.y, hi.y);
    const int iz = bin_of(site.r.z, lo.z, hi.z);
    ++bins[static_cast<std::size_t>((iz * m + iy) * m + ix)];
  }
  double h = 0.0;
  const double total = static_cast<double>(sites.size());
  for (const auto c : bins) {
    if (c == 0) continue;
    const double p = c / total;
    h -= p * std::log2(p);
  }
  return h;
}

GenerationResult Simulation::run_generation(
    std::vector<particle::FissionSite>& source,
    std::vector<particle::FissionSite>& next, int generation_index,
    bool active) {
  const std::size_t n = source.size();
  const double t0 = prof::now_seconds();
  obs::Tracer::Scope span(obs::tracer(), "generation", "eigenvalue");

  TallyAccumulator acc(settings_.tally_mode);
  EventCounts counts_total;
  particle::ConcurrentBank shared_bank(n * 2);
  std::mutex merge_mu;

  // Seed block for this generation: ids unique across generations.
  const std::uint64_t id_base =
      static_cast<std::uint64_t>(generation_index) * (settings_.n_particles + 1);

  MeshTally* mesh = active ? settings_.mesh_tally : nullptr;
  parallel_chunks(settings_.n_threads, n, [&](int /*tid*/, std::size_t begin,
                                              std::size_t end) {
    TallyScores local;
    EventCounts counts;
    std::vector<particle::FissionSite> local_bank;
    local_bank.reserve((end - begin) * 3);

    std::vector<particle::Particle> ps;
    ps.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      particle::Particle p = particle::Particle::born(
          settings_.seed, id_base + i, source[i].r, source[i].energy);
      ps.push_back(p);
    }

    if (settings_.mode == TransportMode::history) {
      for (auto& p : ps) {
        if (settings_.tally_mode == TallyMode::thread_local_reduce) {
          history_.track(p, local, counts, local_bank, mesh);
        } else {
          // Per-history commit so the synchronization cost is exercised.
          TallyScores one;
          history_.track(p, one, counts, local_bank, mesh);
          acc.score(one);
        }
      }
    } else {
      event_.run(ps, local, counts, local_bank, mesh);
    }

    if (settings_.tally_mode == TallyMode::thread_local_reduce ||
        settings_.mode == TransportMode::event) {
      acc.score(local);
    }
    shared_bank.append(std::move(local_bank));
    std::lock_guard lk(merge_mu);
    counts_total += counts;
  });
  next = shared_bank.drain();

  GenerationResult g;
  g.active = active;
  g.tallies = acc.total();
  g.counts = counts_total;
  g.n_sites = next.size();
  g.entropy = shannon_entropy(next);
  const double w = static_cast<double>(n);
  g.k_collision = g.tallies.k_collision / w;
  g.k_absorption = g.tallies.k_absorption / w;
  g.k_tracklength = g.tallies.k_tracklength / w;
  g.k_combined =
      (g.k_collision + g.k_absorption + g.k_tracklength) / 3.0;
  g.seconds = prof::now_seconds() - t0;

  // Generation-level series: convergence gauge, wall-time and bank-occupancy
  // histograms. Occupancy is the sites-produced / sites-requested ratio —
  // the quantity that predicts resampling pressure and fission-bank memory.
  static const obs::Gauge g_k = obs::metrics().gauge(
      "vmc_k_collision", {}, "Latest generation collision k estimate");
  static const obs::Histogram h_secs = obs::metrics().histogram(
      "vmc_generation_seconds", {1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0}, {},
      "Wall time per fission generation");
  static const obs::Histogram h_bank = obs::metrics().histogram(
      "vmc_fission_bank_occupancy_ratio",
      {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0}, {},
      "Fission sites produced per source particle, per generation");
  static const obs::Counter c_particles = obs::metrics().counter(
      "vmc_generation_particles_total", {},
      "Source particles transported across all generations");
  g_k.set(g.k_collision);
  h_secs.observe(g.seconds);
  if (n > 0)
    h_bank.observe(static_cast<double>(g.n_sites) / static_cast<double>(n));
  c_particles.inc(n);
  return g;
}

RunResult Simulation::run() {
  RunResult result;
  std::vector<particle::FissionSite> source;
  rng::Stream resample_stream(settings_.seed ^ 0xbadc0deULL);
  int first_gen = 0;

  if (!settings_.resume_from.empty()) {
    // Crash recovery: pick the campaign up exactly where the last good
    // checkpoint left it — same source, same resampling-stream state, same
    // generation index, so the k history continues bit-for-bit as if the
    // interruption never happened (tested in tests/resil).
    const StatePoint sp = read_statepoint(settings_.resume_from);
    if (sp.seed != settings_.seed) {
      throw std::runtime_error(
          "statepoint seed does not match settings.seed: refusing to resume "
          "a different campaign");
    }
    first_gen = sp.generations_completed;
    result.k_collision_history = sp.k_history;
    source = sp.source;
    resample_stream = rng::Stream(sp.resample_state);
  } else {
    source = initial_source();
  }
  result.first_generation = first_gen;

  BatchStatistics k_stats;
  const int total_gens = settings_.n_inactive + settings_.n_active;
  std::uint64_t active_particles = 0;
  std::uint64_t inactive_particles = 0;

  for (int gen = first_gen; gen < total_gens; ++gen) {
    const bool active = gen >= settings_.n_inactive;
    std::vector<particle::FissionSite> next;
    next.reserve(source.size() * 2);
    GenerationResult g = run_generation(source, next, gen, active);

    if (active) {
      k_stats.add(g.k_combined);
      result.active_seconds += g.seconds;
      result.counts_active += g.counts;
      active_particles += source.size();
    } else {
      result.inactive_seconds += g.seconds;
      inactive_particles += source.size();
    }
    result.counts_total += g.counts;
    result.k_collision_history.push_back(g.k_collision);
    result.generations.push_back(std::move(g));

    source = resample_bank(next, settings_.n_particles, resample_stream);

    if (settings_.checkpoint_every > 0 && !settings_.checkpoint_path.empty() &&
        (gen + 1) % settings_.checkpoint_every == 0) {
      StatePoint sp;
      sp.seed = settings_.seed;
      sp.resample_state = resample_stream.state();
      sp.generations_completed = gen + 1;
      sp.k_history = result.k_collision_history;
      sp.source = source;
      write_statepoint(settings_.checkpoint_path, sp);
    }

    // After the checkpoint: a callback that throws (serve.worker_death)
    // leaves a consistent statepoint behind, so resume replays bit-identically.
    if (settings_.on_generation)
      settings_.on_generation(result.generations.back(), gen);
  }

  result.k_eff = k_stats.mean();
  result.k_std = k_stats.std_err();
  if (result.active_seconds > 0.0) {
    result.rate_active =
        static_cast<double>(active_particles) / result.active_seconds;
  }
  if (result.inactive_seconds > 0.0) {
    result.rate_inactive =
        static_cast<double>(inactive_particles) / result.inactive_seconds;
  }
  return result;
}

}  // namespace vmc::core
