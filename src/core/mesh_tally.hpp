// User-defined tallies over phase space: a regular spatial mesh crossed
// with an energy-group structure, scored with the collision estimator.
//
// The paper notes that "in general, alpha differs between active and
// inactive batches, particularly if user-defined tallies are collected
// throughout phase space" (Section III-B1) — its experiments use only the
// cheap global tallies. This module provides the expensive kind, so the
// ablation bench can quantify how phase-space tallies depress the active
// calculation rate, and so applications can extract flux/power maps
// (examples/full_core prints the radial power distribution from one).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "geom/vec3.hpp"

namespace vmc::core {

/// Regular (nx, ny, nz) spatial mesh crossed with energy groups. Scores are
/// collision-estimated: score = weight / Sigma_t per collision (the standard
/// flux estimator), or weight * nu*Sigma_f / Sigma_t for a fission-rate map.
class MeshTally {
 public:
  struct Spec {
    geom::Position lower{-1, -1, -1};
    geom::Position upper{1, 1, 1};
    int nx = 1, ny = 1, nz = 1;
    /// Group boundaries in MeV, ascending, defining n+1 edges for n groups;
    /// empty = one group over all energies.
    std::vector<double> group_edges;
  };

  explicit MeshTally(Spec spec);

  /// Number of spatial cells and energy groups.
  std::size_t n_cells() const {
    return static_cast<std::size_t>(spec_.nx) *
           static_cast<std::size_t>(spec_.ny) *
           static_cast<std::size_t>(spec_.nz);
  }
  int n_groups() const { return n_groups_; }
  std::size_t size() const { return flux_.size(); }

  /// Score one collision: flux += w/Sigma_t, fission += w*nuSigma_f/Sigma_t
  /// in the bin containing (r, energy). Out-of-mesh collisions are dropped
  /// (counted). Thread-safe (atomic accumulation).
  void score_collision(geom::Position r, double energy, double weight,
                       double sigma_t, double nu_sigma_f);

  /// Bin index for (r, energy), or -1 if outside the mesh.
  std::int64_t bin_of(geom::Position r, double energy) const;

  /// Accumulated flux / fission-rate scores per bin.
  double flux(std::size_t bin) const {
    return flux_[bin].load(std::memory_order_relaxed);
  }
  double fission(std::size_t bin) const {
    return fission_[bin].load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t scored() const {
    return scored_.load(std::memory_order_relaxed);
  }

  /// Flux summed over z and energy: the (nx x ny) radial map.
  std::vector<double> radial_flux_map() const;
  std::vector<double> radial_fission_map() const;

  /// Flux summed over space: the n_groups energy spectrum.
  std::vector<double> energy_spectrum() const;

  void reset();

  const Spec& spec() const { return spec_; }

 private:
  std::vector<double> radial_map(
      const std::vector<std::atomic<double>>& score) const;

  Spec spec_;
  int n_groups_ = 1;
  std::vector<std::atomic<double>> flux_;
  std::vector<std::atomic<double>> fission_;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> scored_{0};
};

/// Equal-lethargy group edges from e_min to e_max (the standard spectrum
/// binning).
std::vector<double> log_group_edges(double e_min, double e_max, int n_groups);

}  // namespace vmc::core
