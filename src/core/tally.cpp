#include "core/tally.hpp"

#include <cmath>

namespace vmc::core {

double ordered_sum(std::span<const double> xs) {
  double s = 0.0;
  for (const double x : xs) s += x;
  return s;
}

double ordered_sum_strided(std::span<const double> xs, std::size_t stride,
                           std::size_t offset) {
  double s = 0.0;
  for (std::size_t i = offset; i < xs.size(); i += stride) s += xs[i];
  return s;
}

namespace {
void atomic_add(std::atomic<double>& a, double x) {
  double old = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(old, old + x, std::memory_order_relaxed)) {
  }
}
}  // namespace

void TallyAccumulator::score(const TallyScores& s) {
  switch (mode_) {
    case TallyMode::thread_local_reduce:
    case TallyMode::critical: {
      std::lock_guard lk(mu_);
      guarded_ += s;
      break;
    }
    case TallyMode::atomic_add:
      atomic_add(a_kc_, s.k_collision);
      atomic_add(a_ka_, s.k_absorption);
      atomic_add(a_kt_, s.k_tracklength);
      atomic_add(a_col_, s.collision);
      atomic_add(a_abs_, s.absorption);
      atomic_add(a_trk_, s.track_length);
      atomic_add(a_leak_, s.leakage);
      break;
  }
}

TallyScores TallyAccumulator::total() const {
  if (mode_ == TallyMode::atomic_add) {
    TallyScores t;
    t.k_collision = a_kc_.load();
    t.k_absorption = a_ka_.load();
    t.k_tracklength = a_kt_.load();
    t.collision = a_col_.load();
    t.absorption = a_abs_.load();
    t.track_length = a_trk_.load();
    t.leakage = a_leak_.load();
    return t;
  }
  std::lock_guard lk(mu_);
  return guarded_;
}

void TallyAccumulator::reset() {
  std::lock_guard lk(mu_);
  guarded_ = TallyScores{};
  a_kc_ = 0.0;
  a_ka_ = 0.0;
  a_kt_ = 0.0;
  a_col_ = 0.0;
  a_abs_ = 0.0;
  a_trk_ = 0.0;
  a_leak_ = 0.0;
}

void BatchStatistics::add(double x) {
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

double BatchStatistics::mean() const { return n_ > 0 ? sum_ / n_ : 0.0; }

double BatchStatistics::std_err() const {
  if (n_ < 2) return 0.0;
  const double m = mean();
  const double var = (sum_sq_ / n_ - m * m) * n_ / (n_ - 1.0);
  return std::sqrt(std::max(0.0, var) / n_);
}

}  // namespace vmc::core
