// Fixed-source (shielding) transport mode: no fission iteration — a fixed
// external source emits particles, and the detector quantities are tallied
// directly. Complements the eigenvalue driver: OpenMC offers the same two
// run modes, and fixed-source problems admit analytic anchors (exponential
// attenuation, 1/4πr² spreading) that the validation tests exploit.
#pragma once

#include <cstdint>
#include <functional>

#include "core/history.hpp"
#include "core/mesh_tally.hpp"
#include "core/tally.hpp"
#include "geom/geometry.hpp"
#include "physics/collision.hpp"
#include "xsdata/library.hpp"

namespace vmc::core {

/// External source definition: where and with what energy particles are
/// born. Directions are isotropic.
struct ExternalSource {
  enum class Kind : unsigned char { point, box };
  Kind kind = Kind::point;
  geom::Position point{0, 0, 0};
  geom::Position box_lo{0, 0, 0};
  geom::Position box_hi{0, 0, 0};
  /// Monoenergetic when > 0; Watt-spectrum otherwise.
  double energy = 1.0;

  static ExternalSource point_source(geom::Position r, double e) {
    ExternalSource s;
    s.kind = Kind::point;
    s.point = r;
    s.energy = e;
    return s;
  }
  static ExternalSource box_source(geom::Position lo, geom::Position hi,
                                   double e) {
    ExternalSource s;
    s.kind = Kind::box;
    s.box_lo = lo;
    s.box_hi = hi;
    s.energy = e;
    return s;
  }
};

struct FixedSourceSettings {
  std::uint64_t n_particles = 10000;
  int n_batches = 5;  // independent batches for uncertainty estimation
  std::uint64_t seed = 42;
  int n_threads = 1;
  physics::PhysicsSettings physics = physics::PhysicsSettings::full();
  TrackerOptions tracker;
  ExternalSource source;
  MeshTally* mesh_tally = nullptr;  // non-owning, scored in every batch
};

struct FixedSourceResult {
  double leakage_fraction = 0.0;      // mean over batches
  double leakage_std = 0.0;           // std error of the mean
  double absorption_fraction = 0.0;
  double collisions_per_particle = 0.0;
  double seconds = 0.0;
  double rate = 0.0;                  // particles / second
  TallyScores tallies;                // summed over all batches
  EventCounts counts;
};

/// Run a fixed-source calculation. Fission is treated as absorption with no
/// secondaries banked (a pure shielding calculation); use the eigenvalue
/// driver for multiplying systems.
FixedSourceResult run_fixed_source(const geom::Geometry& geometry,
                                   const xs::Library& lib,
                                   const FixedSourceSettings& settings);

}  // namespace vmc::core
