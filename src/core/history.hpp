// History-based transport: one thread follows one particle from birth to
// death — OpenMC's native algorithm, the MIMD-style method of the paper's
// title. All control flow is per-particle and data-dependent, which is
// precisely why it vectorizes poorly and why the event-based alternative
// (core/event.hpp) exists.
#pragma once

#include <vector>

#include "core/mesh_tally.hpp"
#include "core/tally.hpp"
#include "geom/geometry.hpp"
#include "particle/particle.hpp"
#include "physics/collision.hpp"
#include "prof/profiler.hpp"
#include "xsdata/library.hpp"

namespace vmc::core {

struct TrackerOptions {
  double nu_bar = 2.43;        // effective nu for the k estimators
  int max_events = 1 << 20;    // per-history safety cap
  bool profile = false;        // emit prof timers (calculate_xs, ...)

  // Variance reduction (OpenMC's survival_biasing option): collisions never
  // kill the particle outright; the absorbed fraction of the weight is
  // deposited and the survivor continues with reduced weight. Expected
  // fission production is banked every collision. Particles below
  // weight_cutoff play Russian roulette to weight_survival.
  bool survival_biasing = false;
  double weight_cutoff = 0.25;
  double weight_survival = 1.0;
};

/// Tracks single particles to completion, scoring tallies and banking
/// fission sites. Stateless w.r.t. particles: safe to share across threads
/// (each thread passes its own tally/bank/count buffers).
class HistoryTracker {
 public:
  HistoryTracker(const geom::Geometry& geometry, const xs::Library& lib,
                 const physics::Collision& coll, TrackerOptions opt = {});

  /// Simulate one history. Scores into `tally` (always; the caller decides
  /// whether an inactive generation's scores are kept), increments `counts`,
  /// and appends fission sites to `bank`.
  void track(particle::Particle& p, TallyScores& tally, EventCounts& counts,
             std::vector<particle::FissionSite>& bank,
             MeshTally* mesh = nullptr) const;

  const TrackerOptions& options() const { return opt_; }

 private:
  const geom::Geometry& geometry_;
  const xs::Library& lib_;
  const physics::Collision& coll_;
  TrackerOptions opt_;
  // Pre-registered profile timers (cheap handles; used when opt_.profile).
  prof::TimerHandle t_xs_, t_boundary_, t_collide_, t_cross_;
};

}  // namespace vmc::core
