#include "core/event.hpp"

#include <algorithm>
#include <cmath>

#include "core/event_queue.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/simd.hpp"
#include "xsdata/kernels.hpp"
#include "xsdata/lookup.hpp"

namespace vmc::core {

namespace {
constexpr double kEnergyFloor = 1.0e-11;

// Per-kernel banked-sweep throughput counters, shared by the naive and the
// compacting scheduler so the series stays comparable across the ablation.
// Registered once — the isa label captures the backend DISPATCHED at first
// bump (force_isa() switches after that keep the original label; the
// forced-ISA sweeps compare kernel outputs, not this counter) — and bumped
// once per run(), so there is no per-iteration metrics cost.
void bump_sweep_counters(std::uint64_t n_xs, std::uint64_t n_dist,
                         std::uint64_t n_adv, std::uint64_t n_coll) {
  static const char* kHelp = "Particles processed per banked event kernel";
  static const char* kIsa = simd::dispatch().name;
  static const obs::Counter c_xs = obs::metrics().counter(
      "vmc_bank_sweep_particles_total",
      {{"kernel", "xs_lookup"}, {"isa", kIsa}}, kHelp);
  static const obs::Counter c_dist = obs::metrics().counter(
      "vmc_bank_sweep_particles_total",
      {{"kernel", "sample_distance"}, {"isa", kIsa}}, kHelp);
  static const obs::Counter c_adv = obs::metrics().counter(
      "vmc_bank_sweep_particles_total",
      {{"kernel", "advance_geometry"}, {"isa", kIsa}}, kHelp);
  static const obs::Counter c_coll = obs::metrics().counter(
      "vmc_bank_sweep_particles_total",
      {{"kernel", "collide"}, {"isa", kIsa}}, kHelp);
  c_xs.inc(n_xs);
  c_dist.inc(n_dist);
  c_adv.inc(n_adv);
  c_coll.inc(n_coll);
}
}  // namespace

EventTracker::EventTracker(const geom::Geometry& geometry,
                           const xs::Library& lib,
                           const physics::Collision& coll, Options opt)
    : geometry_(geometry),
      lib_(lib),
      coll_(coll),
      opt_(opt),
      t_xs_(prof::registry().handle("calculate_xs_banked")),
      t_dist_(prof::registry().handle("sample_distance_banked")),
      t_advance_(prof::registry().handle("advance_geometry")),
      t_collide_(prof::registry().handle("collide")) {}

void EventTracker::run(std::span<particle::Particle> particles,
                       TallyScores& tally, EventCounts& counts,
                       std::vector<particle::FissionSite>& bank,
                       MeshTally* mesh) const {
  if (opt_.compact_queues) {
    run_compact(particles, tally, counts, bank, mesh);
  } else {
    run_naive(particles, tally, counts, bank, mesh);
  }
}

void EventTracker::run_naive(std::span<particle::Particle> particles,
                             TallyScores& tally, EventCounts& counts,
                             std::vector<particle::FissionSite>& bank,
                             MeshTally* mesh) const {
  const std::size_t n = particles.size();
  const bool profile = opt_.profile;
  auto& reg = prof::registry();
  // Tracing mirrors the `if (profile)` timer idiom; enabledness is captured
  // once so a mid-sweep toggle cannot unbalance the span ring.
  obs::Tracer& tr = obs::tracer();
  const bool tracing = tr.enabled();
  std::uint64_t n_xs = 0, n_dist = 0, n_adv = 0, n_coll = 0;

  std::vector<geom::Geometry::State> states(n);
  std::vector<std::uint32_t> alive;
  alive.reserve(n);
  counts.histories += n;

  for (std::size_t i = 0; i < n; ++i) {
    particle::Particle& p = particles[i];
    if (geometry_.locate(p.r, p.u, states[i])) {
      alive.push_back(static_cast<std::uint32_t>(i));
    } else {
      tally.leakage += p.weight;
      p.alive = false;
    }
  }

  // Reusable stage buffers in *alive order*.
  simd::aligned_vector<double> energies;
  simd::aligned_vector<double> sig_total;
  simd::aligned_vector<double> xi;
  simd::aligned_vector<double> dist;
  std::vector<xs::XsSet> sigma(n);
  std::vector<xs::XsSet> bucket_sigma;
  simd::aligned_vector<double> bucket_e;
  std::vector<std::vector<std::uint32_t>> buckets(
      static_cast<std::size_t>(lib_.n_materials()));
  std::vector<std::uint32_t> collide_list;
  std::vector<std::uint32_t> next_alive;

  for (int iter = 0; !alive.empty() && iter < opt_.max_iterations; ++iter) {
    const std::size_t na = alive.size();

    // --- Stage 1: banked cross-section lookups (bucketed by material) -----
    if (profile) reg.start(t_xs_);
    if (tracing) tr.begin("xs_lookup_banked", "event");
    for (auto& b : buckets) b.clear();
    for (const std::uint32_t i : alive) {
      buckets[static_cast<std::size_t>(states[i].material)].push_back(i);
    }
    for (int m = 0; m < lib_.n_materials(); ++m) {
      const auto& bucket = buckets[static_cast<std::size_t>(m)];
      if (bucket.empty()) continue;
      bucket_e.resize(bucket.size());
      bucket_sigma.resize(bucket.size());
      for (std::size_t j = 0; j < bucket.size(); ++j) {
        bucket_e[j] = particles[bucket[j]].energy;
      }
      if (opt_.simd_lookup) {
        xs::macro_xs_banked(lib_, m, bucket_e, bucket_sigma, opt_.lookup);
      } else {
        xs::macro_xs_banked_scalar(lib_, m, bucket_e, bucket_sigma,
                                   opt_.lookup);
      }
      for (std::size_t j = 0; j < bucket.size(); ++j) {
        sigma[bucket[j]] = bucket_sigma[j];
      }
      counts.nuclide_terms +=
          bucket.size() * lib_.material(m).size();
    }
    counts.lookups += na;
    n_xs += na;
    if (tracing) tr.end();
    if (profile) reg.stop(t_xs_);

    // --- Stage 2: banked distance sampling (Eq. 1, Algorithm 4) -----------
    if (profile) reg.start(t_dist_);
    if (tracing) tr.begin("sample_distance_banked", "event");
    xi.resize(na);
    sig_total.resize(na);
    dist.resize(na);
    for (std::size_t j = 0; j < na; ++j) {
      xi[j] = particles[alive[j]].stream.next();
      sig_total[j] = sigma[alive[j]].total;
    }
    counts.rng_draws_est += na;
    if (opt_.simd_distance) {
      // Runtime-dispatched banked distance kernel (masked remainder inside;
      // dead lanes get xi=0.5 / sigma=1.0 and never reach memory).
      xs::kern::active_isa_kernels().distance(
          xi.data(), sig_total.data(), dist.data(),
          static_cast<std::int64_t>(na));
    } else {
      for (std::size_t j = 0; j < na; ++j) {
        dist[j] = sig_total[j] > 0.0 ? -std::log(xi[j]) / sig_total[j]
                                     : geom::kInfDistance;
      }
    }
    n_dist += na;
    if (tracing) tr.end();
    if (profile) reg.stop(t_dist_);

    // --- Stage 3: geometry advance / crossing (scalar) --------------------
    if (profile) reg.start(t_advance_);
    if (tracing) tr.begin("advance_geometry", "event");
    collide_list.clear();
    next_alive.clear();
    for (std::size_t j = 0; j < na; ++j) {
      const std::uint32_t i = alive[j];
      particle::Particle& p = particles[i];
      geom::Geometry::State& gs = states[i];
      const double d_coll = dist[j];
      const geom::Geometry::Boundary b = geometry_.distance_to_boundary(gs);
      const double d = d_coll < b.distance ? d_coll : b.distance;
      tally.track_length += p.weight * d;
      tally.k_tracklength += p.weight * d * opt_.nu_bar * sigma[i].fission;

      if (d_coll < b.distance) {
        geometry_.advance(gs, d_coll);
        p.r = gs.position();
        collide_list.push_back(i);
      } else {
        counts.crossings += 1;
        p.n_crossings += 1;
        const geom::Geometry::CrossResult cr = geometry_.cross(gs, b);
        if (cr == geom::Geometry::CrossResult::leaked) {
          tally.leakage += p.weight;
          p.alive = false;
        } else {
          p.r = gs.position();
          p.u = gs.direction();
          next_alive.push_back(i);
        }
      }
    }
    n_adv += na;
    if (tracing) tr.end();
    if (profile) reg.stop(t_advance_);

    // --- Stage 4: collision physics (scalar) ------------------------------
    if (profile) reg.start(t_collide_);
    if (tracing) tr.begin("collide", "event");
    n_coll += collide_list.size();
    for (const std::uint32_t i : collide_list) {
      particle::Particle& p = particles[i];
      geom::Geometry::State& gs = states[i];
      const xs::XsSet& sg = sigma[i];
      counts.collisions += 1;
      p.n_collisions += 1;
      tally.collision += p.weight;
      if (sg.total > 0.0) {
        tally.k_collision += p.weight * opt_.nu_bar * sg.fission / sg.total;
      }
      if (mesh != nullptr) {
        mesh->score_collision(p.r, p.energy, p.weight, sg.total,
                              opt_.nu_bar * sg.fission);
      }
      const physics::CollisionResult res =
          coll_.collide(gs.material, p.energy, p.u, sg, p.stream);
      counts.rng_draws_est += 4;
      switch (res.type) {
        case physics::CollisionType::scatter:
          p.energy = res.energy;
          p.u = res.direction;
          gs.set_direction(p.u);
          if (p.energy <= kEnergyFloor) {
            p.alive = false;
          } else {
            next_alive.push_back(i);
          }
          break;
        case physics::CollisionType::capture:
          tally.absorption += p.weight;
          if (sg.absorption > 0.0) {
            tally.k_absorption +=
                p.weight * opt_.nu_bar * sg.fission / sg.absorption;
          }
          p.alive = false;
          break;
        case physics::CollisionType::fission:
          tally.absorption += p.weight;
          if (sg.absorption > 0.0) {
            tally.k_absorption +=
                p.weight * opt_.nu_bar * sg.fission / sg.absorption;
          }
          for (int k = 0; k < res.n_fission_neutrons; ++k) {
            bank.push_back(
                particle::FissionSite{p.r, rng::sample_watt(p.stream)});
          }
          p.alive = false;
          break;
      }
    }
    if (tracing) tr.end();
    if (profile) reg.stop(t_collide_);

    // Keep alive-order stable (ascending index) so stage buffers stay
    // deterministic regardless of stage-3/4 interleaving.
    std::sort(next_alive.begin(), next_alive.end());
    alive.swap(next_alive);
    (void)na;
  }

  // Safety cap: force-kill stragglers.
  for (const std::uint32_t i : alive) particles[i].alive = false;

  bump_sweep_counters(n_xs, n_dist, n_adv, n_coll);
}

// The compacting event-queue scheduler. Identical physics and per-particle
// RNG consumption to run_naive — the queue only changes HOW the live set is
// found, never WHAT happens to a live particle — so with the SIMD stages
// disabled the two paths are bit-identical (tested in
// tests/core/test_event_queue.cpp). Differences from the naive sweep:
//   * no per-iteration alive rebuild + O(n log n) sort: deaths are marked in
//     place and removed by one stable O(live) compaction pass;
//   * no per-material scratch vectors: one counting sort yields contiguous
//     same-material runs of a reused SoA staging buffer, and results are
//     read back through the live→lookup permutation instead of a scatter
//     into a full-bank-sized array;
//   * the SIMD distance remainder is handled with masked loads/stores
//     instead of a scalar std::log tail.
void EventTracker::run_compact(std::span<particle::Particle> particles,
                               TallyScores& tally, EventCounts& counts,
                               std::vector<particle::FissionSite>& bank,
                               MeshTally* mesh) const {
  const std::size_t n = particles.size();
  const bool profile = opt_.profile;
  auto& reg = prof::registry();
  obs::Tracer& tr = obs::tracer();
  const bool tracing = tr.enabled();
  std::uint64_t n_xs = 0, n_dist = 0, n_adv = 0, n_coll = 0;

  std::vector<geom::Geometry::State> states(n);
  EventQueues q;
  q.reset(lib_.n_materials(), n);
  counts.histories += n;

  for (std::size_t i = 0; i < n; ++i) {
    particle::Particle& p = particles[i];
    if (geometry_.locate(p.r, p.u, states[i])) {
      q.push_live(static_cast<std::uint32_t>(i));
    } else {
      tally.leakage += p.weight;
      p.alive = false;
    }
  }

  for (int iter = 0; !q.empty() && iter < opt_.max_iterations; ++iter) {
    const std::size_t na = q.live_count();
    const std::span<const std::uint32_t> live = q.live();
    q.begin_iteration();

    // --- Stage 1: material-sorted banked lookups --------------------------
    if (profile) reg.start(t_xs_);
    if (tracing) tr.begin("xs_lookup_banked", "event");
    q.build_lookup(particles, states);
    for (const MaterialRun& r : q.runs()) {
      const auto e = q.staged_energies().subspan(r.begin, r.size());
      const auto s = q.staged_sigma().subspan(r.begin, r.size());
      if (opt_.simd_lookup) {
        xs::macro_xs_banked(lib_, r.material, e, s, opt_.lookup);
      } else {
        xs::macro_xs_banked_scalar(lib_, r.material, e, s, opt_.lookup);
      }
      counts.nuclide_terms += r.size() * lib_.material(r.material).size();
    }
    counts.lookups += na;
    n_xs += na;
    if (tracing) tr.end();
    if (profile) reg.stop(t_xs_);

    // --- Stage 2: banked distance sampling (live order) -------------------
    if (profile) reg.start(t_dist_);
    if (tracing) tr.begin("sample_distance_banked", "event");
    auto& xi = q.xi();
    auto& sig_total = q.sig_total();
    auto& dist = q.dist();
    xi.resize(na);
    sig_total.resize(na);
    dist.resize(na);
    for (std::size_t j = 0; j < na; ++j) {
      xi[j] = particles[live[j]].stream.next();
      sig_total[j] = q.sigma_of_live(j).total;
    }
    counts.rng_draws_est += na;
    if (opt_.simd_distance) {
      // Runtime-dispatched banked distance kernel; the masked remainder
      // replaces a scalar std::log tail just as before.
      xs::kern::active_isa_kernels().distance(
          xi.data(), sig_total.data(), dist.data(),
          static_cast<std::int64_t>(na));
    } else {
      for (std::size_t j = 0; j < na; ++j) {
        dist[j] = sig_total[j] > 0.0 ? -std::log(xi[j]) / sig_total[j]
                                     : geom::kInfDistance;
      }
    }
    n_dist += na;
    if (tracing) tr.end();
    if (profile) reg.stop(t_dist_);

    // --- Stage 3: geometry advance / crossing (scalar, live order) --------
    if (profile) reg.start(t_advance_);
    if (tracing) tr.begin("advance_geometry", "event");
    for (std::size_t j = 0; j < na; ++j) {
      const std::uint32_t i = live[j];
      particle::Particle& p = particles[i];
      geom::Geometry::State& gs = states[i];
      const double d_coll = dist[j];
      const xs::XsSet& sg = q.sigma_of_live(j);
      const geom::Geometry::Boundary b = geometry_.distance_to_boundary(gs);
      const double d = d_coll < b.distance ? d_coll : b.distance;
      tally.track_length += p.weight * d;
      tally.k_tracklength += p.weight * d * opt_.nu_bar * sg.fission;

      if (d_coll < b.distance) {
        geometry_.advance(gs, d_coll);
        p.r = gs.position();
        q.collide().push_back(static_cast<std::uint32_t>(j));
      } else {
        counts.crossings += 1;
        p.n_crossings += 1;
        const geom::Geometry::CrossResult cr = geometry_.cross(gs, b);
        if (cr == geom::Geometry::CrossResult::leaked) {
          tally.leakage += p.weight;
          p.alive = false;
          q.mark_dead(j);
        } else {
          p.r = gs.position();
          p.u = gs.direction();
        }
      }
    }
    n_adv += na;
    if (tracing) tr.end();
    if (profile) reg.stop(t_advance_);

    // --- Stage 4: collision physics (scalar, ascending slot order) --------
    if (profile) reg.start(t_collide_);
    if (tracing) tr.begin("collide", "event");
    n_coll += q.collide().size();
    for (const std::uint32_t j : q.collide()) {
      const std::uint32_t i = live[j];
      particle::Particle& p = particles[i];
      geom::Geometry::State& gs = states[i];
      const xs::XsSet& sg = q.sigma_of_live(j);
      counts.collisions += 1;
      p.n_collisions += 1;
      tally.collision += p.weight;
      if (sg.total > 0.0) {
        tally.k_collision += p.weight * opt_.nu_bar * sg.fission / sg.total;
      }
      if (mesh != nullptr) {
        mesh->score_collision(p.r, p.energy, p.weight, sg.total,
                              opt_.nu_bar * sg.fission);
      }
      const physics::CollisionResult res =
          coll_.collide(gs.material, p.energy, p.u, sg, p.stream);
      counts.rng_draws_est += 4;
      switch (res.type) {
        case physics::CollisionType::scatter:
          p.energy = res.energy;
          p.u = res.direction;
          gs.set_direction(p.u);
          if (p.energy <= kEnergyFloor) {
            p.alive = false;
            q.mark_dead(j);
          }
          break;
        case physics::CollisionType::capture:
          tally.absorption += p.weight;
          if (sg.absorption > 0.0) {
            tally.k_absorption +=
                p.weight * opt_.nu_bar * sg.fission / sg.absorption;
          }
          p.alive = false;
          q.mark_dead(j);
          break;
        case physics::CollisionType::fission:
          tally.absorption += p.weight;
          if (sg.absorption > 0.0) {
            tally.k_absorption +=
                p.weight * opt_.nu_bar * sg.fission / sg.absorption;
          }
          for (int k = 0; k < res.n_fission_neutrons; ++k) {
            bank.push_back(
                particle::FissionSite{p.r, rng::sample_watt(p.stream)});
          }
          p.alive = false;
          q.mark_dead(j);
          break;
      }
    }
    if (tracing) tr.end();
    if (profile) reg.stop(t_collide_);

    // Stable compaction: survivors keep ascending order, so the next
    // iteration's stage buffers — and the tally accumulation order — stay
    // deterministic and identical to the naive sweep's.
    q.compact();
  }

  // Safety cap: force-kill stragglers.
  for (const std::uint32_t i : q.live()) particles[i].alive = false;

  bump_sweep_counters(n_xs, n_dist, n_adv, n_coll);
}

}  // namespace vmc::core
