#include "core/fixed_source.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/profiler.hpp"

namespace vmc::core {

namespace {

particle::Particle born_from(const ExternalSource& src, std::uint64_t master,
                             std::uint64_t id) {
  // Position/energy sampling draws from the particle's own stream so fixed-
  // source runs stay decomposition-invariant like eigenvalue runs.
  particle::Particle p;
  p.id = id;
  p.stream = rng::Stream::for_particle(master, id);
  if (src.kind == ExternalSource::Kind::point) {
    p.r = src.point;
  } else {
    p.r = {src.box_lo.x + p.stream.next() * (src.box_hi.x - src.box_lo.x),
           src.box_lo.y + p.stream.next() * (src.box_hi.y - src.box_lo.y),
           src.box_lo.z + p.stream.next() * (src.box_hi.z - src.box_lo.z)};
  }
  p.energy = src.energy > 0.0 ? src.energy : rng::sample_watt(p.stream);
  const double mu = rng::sample_mu(p.stream);
  const double phi = rng::sample_phi(p.stream);
  p.u = geom::direction_from_angles(mu, phi);
  return p;
}

}  // namespace

FixedSourceResult run_fixed_source(const geom::Geometry& geometry,
                                   const xs::Library& lib,
                                   const FixedSourceSettings& settings) {
  if (!lib.finalized()) throw std::logic_error("library not finalized");
  if (settings.n_batches < 1) throw std::invalid_argument("need >= 1 batch");

  physics::Collision collision(lib, settings.physics);
  const HistoryTracker tracker(geometry, lib, collision, settings.tracker);

  FixedSourceResult result;
  BatchStatistics leak_stats;
  const double t0 = prof::now_seconds();

  static const obs::Counter c_batches = obs::metrics().counter(
      "vmc_fixed_source_batches_total", {}, "Fixed-source batches completed");
  static const obs::Histogram h_batch_leak = obs::metrics().histogram(
      "vmc_fixed_source_batch_leakage_fraction",
      {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}, {},
      "Leakage fraction per fixed-source batch");

  for (int batch = 0; batch < settings.n_batches; ++batch) {
    obs::Tracer::Scope span(obs::tracer(), "fixed_source_batch", "core");
    TallyScores batch_tally;
    EventCounts batch_counts;
    std::mutex merge_mu;
    const std::uint64_t id_base = static_cast<std::uint64_t>(batch) *
                                  (settings.n_particles + 1);

    parallel_chunks(
        settings.n_threads, settings.n_particles,
        [&](int /*tid*/, std::size_t begin, std::size_t end) {
          TallyScores local;
          EventCounts counts;
          std::vector<particle::FissionSite> discard;  // no multiplication
          for (std::size_t i = begin; i < end; ++i) {
            particle::Particle p =
                born_from(settings.source, settings.seed, id_base + i);
            tracker.track(p, local, counts, discard, settings.mesh_tally);
            discard.clear();
          }
          std::lock_guard lk(merge_mu);
          batch_tally += local;
          batch_counts += counts;
        });

    leak_stats.add(batch_tally.leakage /
                   static_cast<double>(settings.n_particles));
    result.tallies += batch_tally;
    result.counts += batch_counts;
    c_batches.inc();
    h_batch_leak.observe(batch_tally.leakage /
                         static_cast<double>(settings.n_particles));
  }

  result.seconds = prof::now_seconds() - t0;
  const double total_particles =
      static_cast<double>(settings.n_particles) * settings.n_batches;
  result.rate = total_particles / result.seconds;
  result.leakage_fraction = leak_stats.mean();
  result.leakage_std = leak_stats.std_err();
  result.absorption_fraction = result.tallies.absorption / total_particles;
  result.collisions_per_particle =
      static_cast<double>(result.counts.collisions) / total_particles;
  return result;
}

}  // namespace vmc::core
