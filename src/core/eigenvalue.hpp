// Eigenvalue (k-effective) power iteration: the OpenMC simulation driver.
//
// Generations of `n_particles` are run in batches; the first `n_inactive`
// batches converge the fission source (no tallies kept — the paper's
// "inactive batches"), the following `n_active` accumulate tallies. Between
// generations the fission bank is resampled to exactly `n_particles` source
// sites. The *calculation rate* (simulated neutrons per wall-clock second)
// this driver reports is the paper's primary metric (Fig. 5, Table III).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/event.hpp"
#include "core/mesh_tally.hpp"
#include "core/history.hpp"
#include "core/tally.hpp"
#include "geom/geometry.hpp"
#include "physics/collision.hpp"
#include "xsdata/library.hpp"

namespace vmc::core {

enum class TransportMode : unsigned char { history, event };

struct GenerationResult;

struct Settings {
  std::uint64_t n_particles = 10000;
  int n_inactive = 2;
  int n_active = 3;
  std::uint64_t seed = 42;
  int n_threads = 1;
  TransportMode mode = TransportMode::history;
  TallyMode tally_mode = TallyMode::thread_local_reduce;
  physics::PhysicsSettings physics = physics::PhysicsSettings::full();
  TrackerOptions tracker;
  EventTracker::Options event;
  /// Optional phase-space tally, scored during ACTIVE generations only (the
  /// expensive user-defined tallies of Section III-B1). Non-owning.
  MeshTally* mesh_tally = nullptr;
  /// Bounding box for initial-source rejection sampling (should cover the
  /// fuel region).
  geom::Position source_lo{-100, -100, -100};
  geom::Position source_hi{100, 100, 100};
  int entropy_mesh = 8;  // Shannon-entropy mesh cells per axis

  // --- crash-consistent checkpointing (resilience subsystem) --------------
  /// Write a statepoint to `checkpoint_path` every `checkpoint_every`
  /// completed generations (0 = never). Writes are atomic (temp + rename):
  /// a crash mid-write preserves the previous checkpoint.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  /// Resume a campaign from this statepoint instead of sampling a fresh
  /// initial source. The file's seed must match `seed` (mixing campaigns is
  /// an error); generations already completed are not re-run, and the
  /// restored k history is prepended to RunResult::k_collision_history.
  std::string resume_from;
  /// Invoked after each generation completes (after the checkpoint for that
  /// generation, if any, has been written). The serving layer uses this to
  /// stream per-generation progress metrics and to host the
  /// `serve.worker_death` fault site: an exception thrown here aborts the
  /// run after a consistent checkpoint, so a resumed run replays to the
  /// identical k history. Must not mutate simulation state.
  std::function<void(const GenerationResult&, int gen)> on_generation;
};

struct GenerationResult {
  bool active = false;
  double k_collision = 0.0;
  double k_absorption = 0.0;
  double k_tracklength = 0.0;
  double k_combined = 0.0;
  double entropy = 0.0;     // Shannon entropy of the fission source (bits)
  std::size_t n_sites = 0;  // fission sites banked
  double seconds = 0.0;     // wall time of this generation
  TallyScores tallies;
  EventCounts counts;
};

struct RunResult {
  double k_eff = 0.0;       // mean of combined estimator over active batches
  double k_std = 0.0;       // standard error
  double active_seconds = 0.0;
  double inactive_seconds = 0.0;
  double rate_active = 0.0;    // particles / second (the paper's metric)
  double rate_inactive = 0.0;
  EventCounts counts_active;   // summed over active generations
  EventCounts counts_total;
  std::vector<GenerationResult> generations;
  /// Collision-estimator k for EVERY completed generation of the campaign,
  /// including generations restored from a resume_from statepoint — the
  /// restart-equivalence invariant is that this vector is identical whether
  /// or not the campaign was interrupted.
  std::vector<double> k_collision_history;
  int first_generation = 0;    // 0 unless resumed from a checkpoint
};

class Simulation {
 public:
  Simulation(const geom::Geometry& geometry, const xs::Library& lib,
             Settings settings);

  /// Run the full batch schedule.
  RunResult run();

  /// Run a single generation from `source`, appending the next generation's
  /// sites to `next`. Exposed for the execution-model runtimes, which drive
  /// generations themselves (offload/symmetric modes).
  GenerationResult run_generation(
      std::vector<particle::FissionSite>& source,
      std::vector<particle::FissionSite>& next, int generation_index,
      bool active);

  /// Sample the initial source (uniform over fissionable material inside
  /// the source box, Watt energies).
  std::vector<particle::FissionSite> initial_source() const;

  const Settings& settings() const { return settings_; }

 private:
  double shannon_entropy(
      const std::vector<particle::FissionSite>& sites) const;

  const geom::Geometry& geometry_;
  const xs::Library& lib_;
  Settings settings_;
  physics::Collision collision_;
  HistoryTracker history_;
  EventTracker event_;
};

/// Resample `bank` to exactly `n` sites (uniform with replacement), using
/// `stream`. The standard OpenMC bank-sampling step between generations.
std::vector<particle::FissionSite> resample_bank(
    const std::vector<particle::FissionSite>& bank, std::size_t n,
    rng::Stream& stream);

}  // namespace vmc::core
