// Statepoint I/O: checkpoint the eigenvalue iteration (fission-bank source,
// RNG bookkeeping, k history) to a binary file and resume it exactly —
// OpenMC's statepoint capability, needed for long full-core campaigns and
// for the restart-equivalence tests.
//
// Format v2: a fixed little-endian header (magic "VMCS", version, counts)
// followed by the resampling-stream state, per-generation k values, the
// source sites as raw (x, y, z, E) doubles, and a trailing CRC-32 over
// everything before it. Self-describing enough for round-tripping between
// runs of the same build; not an archival format.
//
// Crash consistency: write_statepoint serializes to `path + ".tmp"`, flushes
// and fsyncs, then atomically renames over `path` — a crash mid-write leaves
// the previous good checkpoint untouched. read_statepoint validates the
// header counts against the actual file size (rejecting truncation AND
// trailing garbage) and verifies the CRC, so a torn or bit-flipped file is
// always detected rather than silently resumed from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "particle/particle.hpp"

namespace vmc::core {

struct StatePoint {
  std::uint64_t seed = 0;              // master seed of the campaign
  std::uint64_t resample_state = 0;    // bank-resampling stream state
  std::int32_t generations_completed = 0;
  std::vector<double> k_history;       // per completed generation
  std::vector<particle::FissionSite> source;  // next generation's source

  bool operator==(const StatePoint& o) const;
};

/// Serialize to `path` via write-to-temp + flush + fsync + atomic rename.
/// Throws std::runtime_error on I/O error; on failure `path` still holds its
/// previous content. Fault point `statepoint.write` (resilience subsystem)
/// simulates a crash mid-write: a torn `path + ".tmp"` is left behind and
/// std::runtime_error is thrown, with `path` intact.
void write_statepoint(const std::string& path, const StatePoint& sp);

/// Deserialize from `path`. Throws std::runtime_error on I/O error or
/// malformed content: bad magic/version, header counts inconsistent with the
/// file size (truncated, torn, or trailing-garbage files), or CRC mismatch.
StatePoint read_statepoint(const std::string& path);

}  // namespace vmc::core
