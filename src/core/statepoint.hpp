// Statepoint I/O: checkpoint the eigenvalue iteration (fission-bank source,
// RNG bookkeeping, k history) to a binary file and resume it exactly —
// OpenMC's statepoint capability, needed for long full-core campaigns and
// for the restart-equivalence tests.
//
// Format: a fixed little-endian header (magic "VMCS", version, counts)
// followed by the resampling-stream state, per-generation k values, and the
// source sites as raw (x, y, z, E) doubles. Self-describing enough for
// round-tripping between runs of the same build; not an archival format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "particle/particle.hpp"

namespace vmc::core {

struct StatePoint {
  std::uint64_t seed = 0;              // master seed of the campaign
  std::uint64_t resample_state = 0;    // bank-resampling stream state
  std::int32_t generations_completed = 0;
  std::vector<double> k_history;       // per completed generation
  std::vector<particle::FissionSite> source;  // next generation's source

  bool operator==(const StatePoint& o) const;
};

/// Serialize to `path` (overwrites). Throws std::runtime_error on I/O error.
void write_statepoint(const std::string& path, const StatePoint& sp);

/// Deserialize from `path`. Throws std::runtime_error on I/O error or
/// malformed content (bad magic/version/truncation).
StatePoint read_statepoint(const std::string& path);

}  // namespace vmc::core
