#include "core/event_queue.hpp"

#include <algorithm>

namespace vmc::core {

void EventQueues::reset(int n_materials, std::size_t n_particles) {
  live_.clear();
  live_.reserve(n_particles);
  dead_.clear();
  collide_.clear();
  runs_.clear();
  mat_count_.assign(static_cast<std::size_t>(n_materials), 0);
  lookup_.reserve(n_particles);
  pos_.reserve(n_particles);
  e_stage_.reserve(n_particles);
  mat_stage_.reserve(n_particles);
  sigma_stage_.reserve(n_particles);
}

void EventQueues::build_lookup(std::span<const particle::Particle> particles,
                               std::span<const geom::Geometry::State> states) {
  const std::size_t na = live_.size();
  lookup_.resize(na);
  pos_.resize(na);
  e_stage_.resize(na);
  mat_stage_.resize(na);
  sigma_stage_.resize(na);
  runs_.clear();

  std::fill(mat_count_.begin(), mat_count_.end(), 0u);
  for (const std::uint32_t i : live_) {
    ++mat_count_[static_cast<std::size_t>(states[i].material)];
  }

  // Exclusive prefix sum -> per-material placement cursors, and the run
  // table for every non-empty material.
  std::uint32_t offset = 0;
  for (std::size_t m = 0; m < mat_count_.size(); ++m) {
    const std::uint32_t c = mat_count_[m];
    if (c != 0) {
      runs_.push_back(MaterialRun{static_cast<int>(m), offset, offset + c});
    }
    mat_count_[m] = offset;
    offset += c;
  }

  // Stable placement pass: within a material, lookup order == live order.
  for (std::size_t j = 0; j < na; ++j) {
    const std::uint32_t i = live_[j];
    const std::uint32_t k =
        mat_count_[static_cast<std::size_t>(states[i].material)]++;
    lookup_[k] = i;
    pos_[j] = k;
    e_stage_[k] = particles[i].energy;
    mat_stage_[k] = states[i].material;
  }
}

std::size_t EventQueues::hand_off_runs(
    std::size_t per,
    const std::function<void(int, std::size_t, std::size_t)>& fn) const {
  if (per == 0) per = 1;
  std::size_t n_chunks = 0;
  for (const MaterialRun& r : runs_) {
    for (std::size_t b = r.begin; b < r.end; b += per) {
      fn(r.material, b, std::min(r.end, b + per));
      ++n_chunks;
    }
  }
  return n_chunks;
}

void EventQueues::begin_iteration() {
  dead_.assign(live_.size(), 0);
  collide_.clear();
}

std::size_t EventQueues::compact() {
  std::size_t w = 0;
  for (std::size_t j = 0; j < live_.size(); ++j) {
    if (dead_[j] == 0) live_[w++] = live_[j];
  }
  live_.resize(w);
  return w;
}

}  // namespace vmc::core
