// Global tallies and k-effective estimators.
//
// OpenMC's default global tallies — total collision, absorption, and
// track-length scores — are what the paper's "active batches" accumulate
// (Section III-B1: "only the default global tallies are considered").
// Three accumulation strategies are provided because switching from manual
// reductions/critical sections to OpenMP-style reductions and atomics was
// one of the paper's key full-physics optimizations (Section III-B):
//   * thread-local buffers merged at generation end (the fast path),
//   * atomic read-modify-write per score,
//   * a mutex ("critical section") per score.
// bench/abl_tally_sync quantifies the difference.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>

namespace vmc::core {

/// Left-to-right sum of a floating-point span, in index order.
///
/// Summation order is part of the reproducibility contract: event mode must
/// reproduce history mode bit-for-bit, and a recovered distributed run must
/// reproduce the healthy one, which only holds if every reduction on a
/// tally/k-eff path adds its terms in one fixed order. Ad-hoc
/// `std::accumulate` / `+=` loops are therefore banned outside this file by
/// vmc_lint (float-order-dependence); route span reductions through these
/// helpers (or TallyAccumulator for concurrent scoring) instead.
double ordered_sum(std::span<const double> xs);

/// ordered_sum over the strided slice xs[offset], xs[offset + stride], ... —
/// the block-structured distributed tallies reduce per-slot this way.
double ordered_sum_strided(std::span<const double> xs, std::size_t stride,
                           std::size_t offset);

enum class TallyMode : unsigned char { thread_local_reduce, atomic_add, critical };

/// Scores accumulated over one generation (per thread or globally).
struct TallyScores {
  // k-eff estimators: production scored three ways.
  double k_collision = 0.0;    // wgt * nu Sigma_f / Sigma_t at collisions
  double k_absorption = 0.0;   // wgt * nu sigma_f / sigma_a at absorptions
  double k_tracklength = 0.0;  // wgt * d * nu Sigma_f along flights
  // Default global tallies.
  double collision = 0.0;      // total collision score (wgt)
  double absorption = 0.0;     // total absorbed weight
  double track_length = 0.0;   // total path length (wgt * d)
  double leakage = 0.0;        // leaked weight

  TallyScores& operator+=(const TallyScores& o) {
    k_collision += o.k_collision;
    k_absorption += o.k_absorption;
    k_tracklength += o.k_tracklength;
    collision += o.collision;
    absorption += o.absorption;
    track_length += o.track_length;
    leakage += o.leakage;
    return *this;
  }
};

/// Event counters — the quantities the device cost model converts into
/// simulated per-device times (DESIGN.md §2).
struct EventCounts {
  std::uint64_t lookups = 0;          // macroscopic xs evaluations
  std::uint64_t nuclide_terms = 0;    // inner-loop nuclide contributions
  std::uint64_t collisions = 0;
  std::uint64_t crossings = 0;        // surface/lattice crossings
  std::uint64_t histories = 0;
  std::uint64_t rng_draws_est = 0;    // coarse estimate

  EventCounts& operator+=(const EventCounts& o) {
    lookups += o.lookups;
    nuclide_terms += o.nuclide_terms;
    collisions += o.collisions;
    crossings += o.crossings;
    histories += o.histories;
    rng_draws_est += o.rng_draws_est;
    return *this;
  }
};

/// Accumulator implementing the three synchronization strategies behind a
/// single scoring interface. Thread-compatible: score() may be called
/// concurrently; merge_local() commits a thread's local buffer.
class TallyAccumulator {
 public:
  explicit TallyAccumulator(TallyMode mode) : mode_(mode) {}

  TallyMode mode() const { return mode_; }

  /// Commit one history's (or one event's) scores. In thread_local_reduce
  /// mode the caller batches into a local TallyScores and commits rarely; in
  /// atomic/critical modes every call synchronizes (that is the point of the
  /// ablation).
  void score(const TallyScores& s);

  /// Snapshot of everything committed so far.
  TallyScores total() const;

  void reset();

 private:
  TallyMode mode_;
  mutable std::mutex mu_;
  TallyScores guarded_;  // critical + thread_local_reduce commits
  // Atomic mode: one atomic per field.
  std::atomic<double> a_kc_{0.0}, a_ka_{0.0}, a_kt_{0.0};
  std::atomic<double> a_col_{0.0}, a_abs_{0.0}, a_trk_{0.0}, a_leak_{0.0};
};

/// Running mean / standard deviation over active batches (OpenMC-style
/// batch statistics).
class BatchStatistics {
 public:
  void add(double x);
  int n() const { return n_; }
  double mean() const;
  /// Standard error of the mean (0 for n < 2).
  double std_err() const;

 private:
  int n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace vmc::core
