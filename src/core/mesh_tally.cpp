#include "core/mesh_tally.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vmc::core {

namespace {
void atomic_add(std::atomic<double>& a, double x) {
  double old = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(old, old + x, std::memory_order_relaxed)) {
  }
}
}  // namespace

MeshTally::MeshTally(Spec spec) : spec_(std::move(spec)) {
  if (spec_.nx <= 0 || spec_.ny <= 0 || spec_.nz <= 0) {
    throw std::invalid_argument("mesh dimensions must be positive");
  }
  if (!(spec_.lower.x < spec_.upper.x && spec_.lower.y < spec_.upper.y &&
        spec_.lower.z < spec_.upper.z)) {
    throw std::invalid_argument("mesh bounds must be a proper box");
  }
  if (!spec_.group_edges.empty()) {
    if (spec_.group_edges.size() < 2 ||
        !std::is_sorted(spec_.group_edges.begin(), spec_.group_edges.end())) {
      throw std::invalid_argument("group edges must be >= 2, ascending");
    }
    n_groups_ = static_cast<int>(spec_.group_edges.size()) - 1;
  }
  const std::size_t total = n_cells() * static_cast<std::size_t>(n_groups_);
  flux_ = std::vector<std::atomic<double>>(total);
  fission_ = std::vector<std::atomic<double>>(total);
}

std::int64_t MeshTally::bin_of(geom::Position r, double energy) const {
  const auto axis = [](double x, double lo, double hi, int n) {
    if (x < lo || x >= hi) return -1;
    const int i = static_cast<int>((x - lo) / (hi - lo) * n);
    return std::clamp(i, 0, n - 1);
  };
  const int ix = axis(r.x, spec_.lower.x, spec_.upper.x, spec_.nx);
  const int iy = axis(r.y, spec_.lower.y, spec_.upper.y, spec_.ny);
  const int iz = axis(r.z, spec_.lower.z, spec_.upper.z, spec_.nz);
  if (ix < 0 || iy < 0 || iz < 0) return -1;

  int ig = 0;
  if (n_groups_ > 1) {
    const auto& e = spec_.group_edges;
    if (energy < e.front() || energy >= e.back()) return -1;
    // Tiny cache-resident group-edge array (a handful of tally groups), not
    // a per-nuclide grid search — the hash accelerator would cost more than
    // it saves here. vmc-lint: allow(hot-loop-binary-search)
    const auto it = std::upper_bound(e.begin(), e.end(), energy);
    ig = static_cast<int>(it - e.begin()) - 1;
    ig = std::clamp(ig, 0, n_groups_ - 1);
  }
  const std::int64_t cell =
      (static_cast<std::int64_t>(iz) * spec_.ny + iy) * spec_.nx + ix;
  return cell * n_groups_ + ig;
}

void MeshTally::score_collision(geom::Position r, double energy, double weight,
                                double sigma_t, double nu_sigma_f) {
  const std::int64_t bin = bin_of(r, energy);
  if (bin < 0 || sigma_t <= 0.0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  scored_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(flux_[static_cast<std::size_t>(bin)], weight / sigma_t);
  atomic_add(fission_[static_cast<std::size_t>(bin)],
             weight * nu_sigma_f / sigma_t);
}

std::vector<double> MeshTally::radial_map(
    const std::vector<std::atomic<double>>& score) const {
  std::vector<double> map(static_cast<std::size_t>(spec_.nx) *
                              static_cast<std::size_t>(spec_.ny),
                          0.0);
  for (int iz = 0; iz < spec_.nz; ++iz) {
    for (int iy = 0; iy < spec_.ny; ++iy) {
      for (int ix = 0; ix < spec_.nx; ++ix) {
        const std::size_t cell = (static_cast<std::size_t>(iz) *
                                      static_cast<std::size_t>(spec_.ny) +
                                  static_cast<std::size_t>(iy)) *
                                     static_cast<std::size_t>(spec_.nx) +
                                 static_cast<std::size_t>(ix);
        double sum = 0.0;
        for (int g = 0; g < n_groups_; ++g) {
          sum += score[cell * static_cast<std::size_t>(n_groups_) +
                       static_cast<std::size_t>(g)]
                     .load(std::memory_order_relaxed);
        }
        map[static_cast<std::size_t>(iy) * static_cast<std::size_t>(spec_.nx) +
            static_cast<std::size_t>(ix)] += sum;
      }
    }
  }
  return map;
}

std::vector<double> MeshTally::radial_flux_map() const {
  return radial_map(flux_);
}

std::vector<double> MeshTally::radial_fission_map() const {
  return radial_map(fission_);
}

std::vector<double> MeshTally::energy_spectrum() const {
  std::vector<double> spectrum(static_cast<std::size_t>(n_groups_), 0.0);
  for (std::size_t bin = 0; bin < flux_.size(); ++bin) {
    spectrum[bin % static_cast<std::size_t>(n_groups_)] +=
        flux_[bin].load(std::memory_order_relaxed);
  }
  return spectrum;
}

void MeshTally::reset() {
  for (auto& f : flux_) f.store(0.0, std::memory_order_relaxed);
  for (auto& f : fission_) f.store(0.0, std::memory_order_relaxed);
  dropped_.store(0);
  scored_.store(0);
}

std::vector<double> log_group_edges(double e_min, double e_max, int n_groups) {
  if (n_groups < 1 || e_min <= 0.0 || e_max <= e_min) {
    throw std::invalid_argument("bad group structure");
  }
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(n_groups) + 1);
  for (int g = 0; g <= n_groups; ++g) {
    edges.push_back(e_min * std::pow(e_max / e_min,
                                     static_cast<double>(g) / n_groups));
  }
  return edges;
}

}  // namespace vmc::core
