#include "particle/concurrent_bank.hpp"

#include <utility>

namespace vmc::particle {

void ConcurrentBank::reserve(std::size_t n) {
  std::lock_guard lk(mu_);
  sites_.reserve(n);
}

void ConcurrentBank::push(const FissionSite& site) {
  std::lock_guard lk(mu_);
  sites_.push_back(site);
}

void ConcurrentBank::append(std::vector<FissionSite>&& local) {
  std::lock_guard lk(mu_);
  if (sites_.empty()) {
    sites_ = std::move(local);
  } else {
    sites_.insert(sites_.end(), local.begin(), local.end());
  }
  local.clear();
}

std::size_t ConcurrentBank::size() const {
  std::lock_guard lk(mu_);
  return sites_.size();
}

std::vector<FissionSite> ConcurrentBank::drain() {
  std::lock_guard lk(mu_);
  return std::exchange(sites_, {});
}

}  // namespace vmc::particle
