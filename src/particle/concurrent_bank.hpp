// Thread-safe fission-site bank.
//
// During a generation every worker thread produces fission sites; OpenMC-
// derived codes have repeatedly lost reproducibility to ad-hoc shared-bank
// races, so VectorMC funnels all cross-thread site traffic through this one
// type instead of scattering `std::mutex` + `insert` pairs across the
// transport loops. Workers batch sites locally and commit with a single
// `append` per chunk, so the lock is taken O(threads) times per generation,
// not O(sites). `drain` hands the merged bank back to the (single-threaded)
// generation driver.
//
// The TSan stress harness (tests/core/test_tally_stress.cpp) hammers this
// class from many threads; keep every member mutation under `mu_`.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "particle/particle.hpp"

namespace vmc::particle {

class ConcurrentBank {
 public:
  ConcurrentBank() = default;
  explicit ConcurrentBank(std::size_t capacity) { reserve(capacity); }

  ConcurrentBank(const ConcurrentBank&) = delete;
  ConcurrentBank& operator=(const ConcurrentBank&) = delete;

  /// Pre-size the shared buffer (call before the parallel region).
  void reserve(std::size_t n);

  /// Commit one site (hot only in stress tests; transport code batches).
  void push(const FissionSite& site);

  /// Bulk-commit a worker's local bank; `local` is left empty.
  void append(std::vector<FissionSite>&& local);

  /// Sites committed so far. Safe concurrently with push/append, but the
  /// value is stale by the time the caller reads it.
  std::size_t size() const;

  bool empty() const { return size() == 0; }

  /// Move the merged bank out and leave this bank empty. Call only after
  /// the parallel region has joined.
  std::vector<FissionSite> drain();

 private:
  mutable std::mutex mu_;
  std::vector<FissionSite> sites_;
};

}  // namespace vmc::particle
