// Particle state for history-based tracking.
#pragma once

#include <cstdint>

#include "geom/vec3.hpp"
#include "rng/stream.hpp"

namespace vmc::particle {

/// One neutron, as the history-based method carries it: position, flight
/// direction, energy (MeV), statistical weight, and its private RNG stream
/// (seeded from the particle id, so the history is identical under any
/// parallel decomposition).
struct Particle {
  geom::Position r;
  geom::Direction u{0.0, 0.0, 1.0};
  double energy = 1.0;
  double weight = 1.0;
  std::uint64_t id = 0;
  rng::Stream stream;
  bool alive = true;

  // Per-history event counters (feed the device cost model and tallies).
  std::uint32_t n_collisions = 0;
  std::uint32_t n_crossings = 0;
  std::uint32_t n_lookups = 0;

  static Particle born(std::uint64_t master_seed, std::uint64_t id,
                       geom::Position r, double energy) {
    Particle p;
    p.r = r;
    p.energy = energy;
    p.id = id;
    p.stream = rng::Stream::for_particle(master_seed, id);
    // Isotropic birth direction.
    const double mu = rng::sample_mu(p.stream);
    const double phi = rng::sample_phi(p.stream);
    p.u = geom::direction_from_angles(mu, phi);
    return p;
  }
};

/// A fission site produced during a generation; becomes a source particle of
/// the next generation after bank sampling.
struct FissionSite {
  geom::Position r;
  double energy;  // sampled from the Watt spectrum at emission time
};

}  // namespace vmc::particle
