#include "particle/bank.hpp"

namespace vmc::particle {

void SoABank::reserve(std::size_t n) {
  x.reserve(n);
  y.reserve(n);
  z.reserve(n);
  ux.reserve(n);
  uy.reserve(n);
  uz.reserve(n);
  energy.reserve(n);
  weight.reserve(n);
  id.reserve(n);
  material.reserve(n);
}

void SoABank::clear() {
  x.clear();
  y.clear();
  z.clear();
  ux.clear();
  uy.clear();
  uz.clear();
  energy.clear();
  weight.clear();
  id.clear();
  material.clear();
  n_ = 0;
}

void SoABank::push(const Particle& p) {
  push(p.r, p.u, p.energy, p.weight, p.id, -1);
}

void SoABank::push(geom::Position r, geom::Direction u, double e, double w,
                   std::uint64_t pid, int mat) {
  x.push_back(r.x);
  y.push_back(r.y);
  z.push_back(r.z);
  ux.push_back(u.x);
  uy.push_back(u.y);
  uz.push_back(u.z);
  energy.push_back(e);
  weight.push_back(static_cast<float>(w));
  id.push_back(pid);
  material.push_back(static_cast<std::int32_t>(mat));
  ++n_;
}

void SoABank::append_compacted(std::span<const Particle> particles,
                               std::span<const std::uint32_t> order,
                               std::span<const std::int32_t> materials) {
  reserve(n_ + order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    const Particle& p = particles[order[k]];
    push(p.r, p.u, p.energy, p.weight, p.id, materials[k]);
  }
}

Particle SoABank::extract(std::size_t i, std::uint64_t master_seed) const {
  Particle p;
  p.r = {x[i], y[i], z[i]};
  p.u = {ux[i], uy[i], uz[i]};
  p.energy = energy[i];
  p.weight = weight[i];
  p.id = id[i];
  p.stream = rng::Stream::for_particle(master_seed, p.id);
  return p;
}

}  // namespace vmc::particle
