// Structure-of-arrays particle bank — the event-based method's central data
// structure (Algorithm 2: bank_particle / synchronize_bank).
//
// Particles are banked immediately before a homogeneous operation (a cross
// section lookup, a distance sample) so a vector loop can sweep all of them.
// The arrays are 64-byte aligned and padded to the vector width; `bytes()`
// reports the exact footprint, which is what Table II's "bank size
// transferred" column measures for the PCIe offload model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "geom/vec3.hpp"
#include "particle/particle.hpp"
#include "simd/aligned.hpp"

namespace vmc::particle {

class SoABank {
 public:
  SoABank() = default;
  explicit SoABank(std::size_t capacity) { reserve(capacity); }

  void reserve(std::size_t n);
  void clear();
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Bank one particle (append).
  void push(const Particle& p);
  /// Bank raw state (micro-benchmark path: no Particle object exists yet).
  void push(geom::Position r, geom::Direction u, double energy, double weight,
            std::uint64_t id, int material);

  /// Bank the compacted live set in one pass: `order` lists the particle
  /// indices to bank (the event scheduler's material-sorted lookup queue)
  /// and `materials[k]` is the material of `particles[order[k]]`. Only live
  /// particles cross the offload link — dead slots never reach the bank.
  void append_compacted(std::span<const Particle> particles,
                        std::span<const std::uint32_t> order,
                        std::span<const std::int32_t> materials);

  /// Reconstruct an AoS particle view of slot i (bank -> history handoff).
  Particle extract(std::size_t i, std::uint64_t master_seed) const;

  /// Exact data footprint of the banked state in bytes (per-particle state
  /// only; capacity padding excluded).
  std::size_t bytes() const { return n_ * bytes_per_particle(); }
  static constexpr std::size_t bytes_per_particle() {
    return 6 * sizeof(double) + sizeof(double) + sizeof(float) +
           sizeof(std::uint64_t) + sizeof(std::int32_t);
  }

  // SoA columns (read by the banked kernels).
  simd::aligned_vector<double> x, y, z;
  simd::aligned_vector<double> ux, uy, uz;
  simd::aligned_vector<double> energy;
  simd::aligned_vector<float> weight;
  simd::aligned_vector<std::uint64_t> id;
  simd::aligned_vector<std::int32_t> material;

 private:
  std::size_t n_ = 0;
};

}  // namespace vmc::particle
