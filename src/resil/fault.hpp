// Deterministic fault injection: the resilience subsystem's trigger side.
//
// Long campaigns at the paper's 512-MIC scale lose coprocessors, PCIe links,
// and ranks; every such failure path in VectorMC is written as a *named
// fault point* that a test (or a soak run) can arm. The design contract:
//
//   * Zero cost unarmed. A fault point is one relaxed atomic pointer load
//     when no plan is armed — nothing else, no branch history pollution, no
//     lock. All existing determinism/equivalence guarantees are untouched.
//   * Reproducible when armed. A decision is a pure function of
//     (plan seed, point name, caller key, per-(point, key) hit count) — the
//     same spirit as the per-particle RNG streams: independent of thread
//     interleaving as long as callers key their hits deterministically
//     (pipeline stage index, rank id, checkpoint ordinal).
//
// Registered fault points (arm() rejects unknown names):
//   offload.transfer   PCIe bank transfer into the staging buffer
//   offload.compute    banked device sweep
//   comm.send          point-to-point message injection
//   comm.rank_death    a rank dies at the top of a generation (key = rank)
//   statepoint.write   torn checkpoint write (crash mid-fwrite)
//   serve.accept       the serving layer's ingress path dies mid-admission
//                      (key = job seq)
//   serve.worker_death a serve worker dies after a generation's checkpoint
//                      (key = (job seq << 16) | generation)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vmc::resil {

/// Base class for conditions worth retrying (transient by construction).
/// Production code may throw its own subclasses; retry_with_backoff() only
/// catches this family, so logic errors still propagate immediately.
struct TransientError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown by a fault site when its armed rule fires.
struct FaultError : TransientError {
  using TransientError::TransientError;
};

/// Every fault point that exists in the tree. Arm-time validation against
/// this list turns a typo'd point name into an immediate test failure
/// instead of a chaos test that silently injects nothing.
inline constexpr std::string_view kFaultPoints[] = {
    "offload.transfer", "offload.compute",    "comm.send",
    "comm.rank_death",  "statepoint.write",   "serve.accept",
    "serve.worker_death",
};

/// Key wildcard: the rule applies to every caller key.
inline constexpr std::uint64_t kAnyKey = ~std::uint64_t{0};

/// Fault-domain key packing for the multi-device offload executor. A caller
/// key encodes (device, stream lane, ordinal) so one rule can target a whole
/// device (every lane, every chunk), one device x lane, or one exact chunk
/// attempt — the masks below select the granularity. Layout:
///   bits 48..63  device index
///   bits 32..47  stream lane within the device: lane = 2*stream + phase,
///                where phase 0 = transfer, 1 = compute. With the depth-1
///                scheduler this reduces to the historical lanes 0 (transfer)
///                and 1 (compute); at depth S the device exposes 2*S lanes.
///   bits  0..31  ordinal (global chunk index)
constexpr std::uint64_t device_key(std::uint64_t device, std::uint64_t stream,
                                   std::uint64_t ordinal) {
  return (device << 48) | ((stream & 0xFFFFULL) << 32) |
         (ordinal & 0xFFFFFFFFULL);
}

/// Lane of stream s's DMA transfers (lane 0 on stream 0 — the legacy
/// transfer lane).
constexpr std::uint64_t transfer_lane(std::uint64_t stream) {
  return 2 * stream;
}

/// Lane of stream s's kernel launches (lane 1 on stream 0 — the legacy
/// compute lane).
constexpr std::uint64_t compute_lane(std::uint64_t stream) {
  return 2 * stream + 1;
}

/// Rule key masks: a rule matches when (rule.key ^ caller_key) is zero under
/// the mask. kExactKeyMask (the default) preserves the historical exact-match
/// behavior.
inline constexpr std::uint64_t kExactKeyMask = ~std::uint64_t{0};
/// Match every stream and ordinal on one device ("this card is dead").
inline constexpr std::uint64_t kDeviceKeyMask = 0xFFFF000000000000ULL;
/// Match one device x stream lane, any ordinal ("this card's PCIe link").
inline constexpr std::uint64_t kDeviceStreamKeyMask = 0xFFFFFFFF00000000ULL;

/// A declarative schedule of injected failures. Build one in a test, then
/// arm it (PlanGuard) around the code under attack. Builders validate
/// eagerly (std::invalid_argument): probabilities must lie in [0, 1],
/// fail_at requires a non-empty hit list (use always() for "every hit"),
/// and arm() rejects duplicate rules for the same (point, key, mask) —
/// a duplicate is always a test-authoring bug, never a feature.
class FaultPlan {
 public:
  /// Fire on the given 0-based hit indices of (point, key). E.g.
  /// fail_at("offload.transfer", {0, 1}, /*key=*/2): the first two attempts
  /// at pipeline stage 2 fail, the third succeeds. `key_mask` widens the
  /// match (see kDeviceKeyMask); hit indices always count per exact caller
  /// key, so "hit 0" means each matching domain's first attempt.
  FaultPlan& fail_at(std::string_view point, std::vector<std::uint64_t> hits,
                     std::uint64_t key = kAnyKey,
                     std::uint64_t key_mask = kExactKeyMask);

  /// Fire every hit of (point, key) — the "link is down for good" case that
  /// must exhaust retries and force degradation.
  FaultPlan& always(std::string_view point, std::uint64_t key = kAnyKey,
                    std::uint64_t key_mask = kExactKeyMask);

  /// Fire each hit independently with probability `p`, decided by a counter
  /// mix of (seed, point, key, hit index) — reproducible chaos soaks.
  FaultPlan& with_probability(std::string_view point, double p,
                              std::uint64_t seed,
                              std::uint64_t key = kAnyKey,
                              std::uint64_t key_mask = kExactKeyMask);

  struct Rule {
    std::string point;
    std::uint64_t key = kAnyKey;
    std::uint64_t key_mask = kExactKeyMask;  // caller-key bits that must match
    std::vector<std::uint64_t> fire_on;  // explicit hit indices
    bool every_hit = false;
    double probability = 0.0;
    std::uint64_t seed = 0;
  };
  const std::vector<Rule>& rules() const { return rules_; }

 private:
  std::vector<Rule> rules_;
};

/// Arm `plan` globally (copies it). Throws std::invalid_argument if the plan
/// names an unregistered fault point or holds duplicate rules for the same
/// (point, key, mask). Arming while faultable work is in
/// flight is undefined — arm/disarm at quiescent points (tests do this
/// naturally around World::run / run_pipelined calls).
void arm(const FaultPlan& plan);

/// Return to the zero-cost unarmed state.
void disarm();

/// RAII arm/disarm for tests.
class PlanGuard {
 public:
  explicit PlanGuard(const FaultPlan& plan) { arm(plan); }
  ~PlanGuard() { disarm(); }
  PlanGuard(const PlanGuard&) = delete;
  PlanGuard& operator=(const PlanGuard&) = delete;
};

/// THE fault point. Called by instrumented code with a deterministic `key`
/// (stage index, rank, ordinal). Unarmed: one relaxed atomic load, returns
/// false. Armed: bumps the (point, key) hit counter and evaluates the rules.
bool fault_fires(std::string_view point, std::uint64_t key = 0);

/// Observed fire count for `point` since arming (0 when unarmed) — lets
/// chaos tests assert the plan actually injected what it promised.
std::uint64_t fires(std::string_view point);

/// Total hits (fired or not) observed at `point` since arming.
std::uint64_t hits(std::string_view point);

}  // namespace vmc::resil
