// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for statepoint
// integrity: any single-byte corruption — and any burst up to 32 bits — in a
// checkpoint payload is detected on read, which the property fuzz test
// (tests/property/test_statepoint_fuzz.cpp) exercises byte by byte.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace vmc::resil {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0u ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

/// Incremental CRC-32: feed chunks, read value() at the end.
class Crc32 {
 public:
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      crc_ = detail::kCrc32Table[(crc_ ^ p[i]) & 0xFFu] ^ (crc_ >> 8);
    }
  }
  std::uint32_t value() const { return crc_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t crc_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
inline std::uint32_t crc32(const void* data, std::size_t n) {
  Crc32 c;
  c.update(data, n);
  return c.value();
}

}  // namespace vmc::resil
