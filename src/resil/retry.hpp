// Retry-with-exponential-backoff: the recovery half of the transient-fault
// story. Offload transfers (and anything else that throws TransientError)
// are retried a bounded number of times with exponentially growing backoff;
// after `max_retries` the caller degrades gracefully (host fallback) instead
// of failing the campaign.
#pragma once

#include <chrono>
#include <thread>
#include <utility>

#include "resil/fault.hpp"

namespace vmc::resil {

struct RetryPolicy {
  int max_retries = 3;            // retries, i.e. attempts - 1
  double base_backoff_s = 1e-6;   // backoff before the first retry
  double backoff_multiplier = 2.0;
};

/// Run `op`, retrying on TransientError (only — logic errors propagate
/// immediately) up to `policy.max_retries` times with exponential backoff.
/// Returns the number of retries that were needed (0 = first try worked).
/// Rethrows the last TransientError once retries are exhausted; the caller
/// decides whether that means degradation or campaign failure.
template <class Fn>
int retry_with_backoff(const RetryPolicy& policy, Fn&& op) {
  double backoff = policy.base_backoff_s;
  for (int retry = 0;; ++retry) {
    try {
      op();
      return retry;
    } catch (const TransientError&) {
      if (retry >= policy.max_retries) throw;
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      backoff *= policy.backoff_multiplier;
    }
  }
}

}  // namespace vmc::resil
