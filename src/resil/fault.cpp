#include "resil/fault.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <utility>

namespace vmc::resil {

namespace {

// SplitMix64 finalizer: full-avalanche mix so the Bernoulli decision for
// (seed, point, key, hit) is statistically independent across all four
// coordinates. The LCG in src/rng is deliberately not reused here — fault
// decisions must never perturb or correlate with physics streams.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

bool known_point(std::string_view point) {
  for (const auto p : kFaultPoints) {
    if (p == point) return true;
  }
  return false;
}

// Armed-plan state. Counters live here, not in FaultPlan, so the same plan
// object can be re-armed from scratch. Everything behind the mutex — the
// armed path is test-only and its cost is irrelevant; the UNarmed path never
// reaches this file's lock.
struct ArmedState {
  std::mutex mu;
  std::vector<FaultPlan::Rule> rules;
  std::map<std::pair<std::string, std::uint64_t>, std::uint64_t> hit_counts;
  std::map<std::string, std::uint64_t, std::less<>> point_hits;
  std::map<std::string, std::uint64_t, std::less<>> point_fires;
};

ArmedState& state() {
  static ArmedState s;
  return s;
}

// Fast-path guard: non-null iff a plan is armed. Points at the function-local
// static (never freed), so a racing fault site can never observe a dangling
// pointer; arm()/disarm() are specified to happen at quiescent points.
std::atomic<ArmedState*> g_armed{nullptr};

bool rule_fires(const FaultPlan::Rule& r, std::string_view point,
                std::uint64_t key, std::uint64_t hit) {
  if (r.point != point) return false;
  if (r.key != kAnyKey && ((r.key ^ key) & r.key_mask) != 0) return false;
  if (r.every_hit) return true;
  if (std::find(r.fire_on.begin(), r.fire_on.end(), hit) != r.fire_on.end()) {
    return true;
  }
  if (r.probability > 0.0) {
    const std::uint64_t h =
        mix64(r.seed ^ mix64(fnv1a(point) ^ mix64(key ^ mix64(hit))));
    const double u = static_cast<double>(h >> 11) * 0x1p-53;
    return u < r.probability;
  }
  return false;
}

}  // namespace

FaultPlan& FaultPlan::fail_at(std::string_view point,
                              std::vector<std::uint64_t> hits,
                              std::uint64_t key, std::uint64_t key_mask) {
  if (hits.empty()) {
    throw std::invalid_argument(
        "fail_at(\"" + std::string(point) +
        "\"): empty hit list — a rule that can never fire is a test-authoring "
        "bug; use always() to fire on every hit");
  }
  Rule r;
  r.point = std::string(point);
  r.key = key;
  r.key_mask = key_mask;
  r.fire_on = std::move(hits);
  rules_.push_back(std::move(r));
  return *this;
}

FaultPlan& FaultPlan::always(std::string_view point, std::uint64_t key,
                             std::uint64_t key_mask) {
  Rule r;
  r.point = std::string(point);
  r.key = key;
  r.key_mask = key_mask;
  r.every_hit = true;
  rules_.push_back(std::move(r));
  return *this;
}

FaultPlan& FaultPlan::with_probability(std::string_view point, double p,
                                       std::uint64_t seed,
                                       std::uint64_t key,
                                       std::uint64_t key_mask) {
  // The negated form also rejects NaN, which satisfies neither comparison.
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(
        "with_probability(\"" + std::string(point) +
        "\"): probability must be in [0, 1]");
  }
  Rule r;
  r.point = std::string(point);
  r.key = key;
  r.key_mask = key_mask;
  r.probability = p;
  r.seed = seed;
  rules_.push_back(std::move(r));
  return *this;
}

void arm(const FaultPlan& plan) {
  for (const auto& r : plan.rules()) {
    if (!known_point(r.point)) {
      throw std::invalid_argument("unknown fault point: " + r.point);
    }
  }
  // Two rules for the same (point, key, mask) would race on which fires
  // first at each hit — never intended, always a copy-paste slip. Keys that
  // merely overlap through different masks remain legal (a broad "device 1
  // is flaky" rule plus a pinpoint "chunk 7 dies" rule compose fine).
  for (std::size_t i = 0; i < plan.rules().size(); ++i) {
    for (std::size_t j = i + 1; j < plan.rules().size(); ++j) {
      const auto& a = plan.rules()[i];
      const auto& b = plan.rules()[j];
      if (a.point == b.point && a.key == b.key && a.key_mask == b.key_mask) {
        throw std::invalid_argument(
            "duplicate fault rules for (\"" + a.point + "\", key=" +
            std::to_string(a.key) + ", mask=" + std::to_string(a.key_mask) +
            ") — merge them into one rule");
      }
    }
  }
  ArmedState& s = state();
  {
    std::lock_guard lk(s.mu);
    s.rules = plan.rules();
    s.hit_counts.clear();
    s.point_hits.clear();
    s.point_fires.clear();
  }
  g_armed.store(&s, std::memory_order_release);
}

void disarm() {
  g_armed.store(nullptr, std::memory_order_release);
  ArmedState& s = state();
  std::lock_guard lk(s.mu);
  s.rules.clear();
  s.hit_counts.clear();
  // point_hits / point_fires survive until the next arm(): a chaos test can
  // disarm (PlanGuard leaves scope) and still assert how often the campaign
  // actually injected.
}

bool fault_fires(std::string_view point, std::uint64_t key) {
  ArmedState* s = g_armed.load(std::memory_order_relaxed);
  if (s == nullptr) return false;  // the zero-cost path

  std::lock_guard lk(s->mu);
  const std::uint64_t hit =
      s->hit_counts[{std::string(point), key}]++;
  auto hit_it = s->point_hits.find(point);
  if (hit_it == s->point_hits.end()) {
    s->point_hits.emplace(std::string(point), 1);
  } else {
    ++hit_it->second;
  }
  for (const auto& r : s->rules) {
    if (rule_fires(r, point, key, hit)) {
      auto fire_it = s->point_fires.find(point);
      if (fire_it == s->point_fires.end()) {
        s->point_fires.emplace(std::string(point), 1);
      } else {
        ++fire_it->second;
      }
      return true;
    }
  }
  return false;
}

std::uint64_t fires(std::string_view point) {
  ArmedState& s = state();
  std::lock_guard lk(s.mu);
  const auto it = s.point_fires.find(point);
  return it == s.point_fires.end() ? 0 : it->second;
}

std::uint64_t hits(std::string_view point) {
  ArmedState& s = state();
  std::lock_guard lk(s.mu);
  const auto it = s.point_hits.find(point);
  return it == s.point_hits.end() ? 0 : it->second;
}

}  // namespace vmc::resil
