#include "xsdata/lookup.hpp"

#include <algorithm>
#include <cassert>

#include "simd/simd.hpp"
#include "xsdata/kernels.hpp"

namespace vmc::xs {

namespace {

/// Downgrade the requested search mode to what this library can serve (the
/// accelerator is always built by finalize(); the guards cover libraries
/// rebuilt without the tier-b index).
inline GridSearch effective_mode(const Library& lib, GridSearch s) {
  if (s != GridSearch::binary && lib.hash_grid().empty()) {
    return GridSearch::binary;
  }
  if (s == GridSearch::hash_nuclide && !lib.hash_grid().has_nuclide_index()) {
    return GridSearch::hash;
  }
  return s;
}

/// Union interval via the selected scalar search. The hash path selects the
/// SAME interval as the binary path, bit-for-bit.
inline std::size_t union_find(const Library& lib, double e, GridSearch s) {
  const auto& ug = lib.union_grid();
  return s == GridSearch::binary ? ug.find(e)
                                 : lib.hash_grid().find(ug.energy, e);
}

/// Per-call scratch for the batched union-interval search (tier c) and the
/// per-particle nuclide intervals (tier b). Thread-local so event-mode
/// worker threads never share or reallocate in steady state.
simd::aligned_vector<std::int32_t>& u_scratch() {
  static thread_local simd::aligned_vector<std::int32_t> s;
  return s;
}
simd::aligned_vector<std::int32_t>& nidx_scratch() {
  static thread_local simd::aligned_vector<std::int32_t> s;
  return s;
}

/// Tier (b): exact interval of nuclide `nuc` for energy `e` from the hash
/// grid's double index — a bounded walk on the nuclide's own grid, bracketed
/// by the bucket rows for b and b+1. No union imap involved.
inline std::size_t nuclide_find_hash(const Nuclide& n, const std::int32_t* row,
                                     const std::int32_t* row_hi, int nuc,
                                     double e) {
  std::size_t idx = static_cast<std::size_t>(row[nuc]);
  const std::size_t hi = static_cast<std::size_t>(row_hi[nuc]);
  while (idx < hi && n.energy[idx + 1] <= e) ++idx;
  return idx;
}

/// Scalar per-nuclide contribution given a union-grid interval, with the
/// bounded walk that recovers the exact nuclide interval when the union grid
/// is thinned.
inline XsSet nuclide_xs_from_union(const Library& lib, int nuc, std::size_t u,
                                   double e) {
  const auto& ug = lib.union_grid();
  const auto& n = lib.nuclide(nuc);
  std::size_t idx = static_cast<std::size_t>(
      ug.imap[u * static_cast<std::size_t>(ug.n_nuclides) +
              static_cast<std::size_t>(nuc)]);
  const std::size_t last = n.grid_size() - 2;
  for (int w = 0; w < ug.walk_bound; ++w) {
    if (idx < last && n.energy[idx + 1] <= e) {
      ++idx;
    } else {
      break;
    }
  }
  return n.evaluate_at(idx, e);
}

/// Flatten the SoA library + material into the POD views the per-ISA kernel
/// tables consume (kernels.hpp). Container handling stays in this base TU.
template <class FlatT>
kern::FlatView flat_view(const FlatT& fl) {
  return kern::FlatView{fl.energy.data(),     fl.energy_f.data(),
                        fl.total.data(),      fl.scatter.data(),
                        fl.absorption.data(), fl.fission.data(),
                        fl.offset.data(),     fl.grid_size.data()};
}

kern::MaterialView material_view(const Material& mat) {
  return kern::MaterialView{mat.nuclides.data(), mat.density.data(),
                            static_cast<std::int32_t>(mat.size())};
}

/// Resolve every particle's union-grid interval into `u_scratch()` (tier c
/// for the hash path, a scalar loop for the binary ablation — both produce
/// the same interval indices bit-for-bit, see DESIGN.md). The kernels then
/// read `us` instead of re-searching per particle.
const std::int32_t* resolve_union_rows(const Library& lib, GridSearch mode,
                                       std::span<const double> energies) {
  const auto& ug = lib.union_grid();
  auto& s = u_scratch();
  s.resize(energies.size());
  if (mode == GridSearch::hash) {
    lib.hash_grid().find_banked(ug.energy, energies, s.data());
  } else {
    for (std::size_t j = 0; j < energies.size(); ++j) {
      s[j] = static_cast<std::int32_t>(ug.find(energies[j]));
    }
  }
  return s.data();
}

}  // namespace

XsSet macro_xs_history(const Library& lib, int material, double e,
                       const XsLookupOptions& opt) {
  assert(lib.finalized());
  const auto& mat = lib.material(material);
  const GridSearch mode = effective_mode(lib, opt.search);
  XsSet sigma;
  if (mode == GridSearch::hash_nuclide) {
    const auto& hg = lib.hash_grid();
    const int b = hg.bucket_of(e);
    const std::int32_t* row = hg.nuclide_row(b);
    const std::int32_t* row_hi = hg.nuclide_row(b + 1);
    for (std::size_t i = 0; i < mat.size(); ++i) {
      const int nuc = mat.nuclides[i];
      const auto& n = lib.nuclide(nuc);
      sigma += mat.density[i] *
               n.evaluate_at(nuclide_find_hash(n, row, row_hi, nuc, e), e);
    }
    return sigma;
  }
  const std::size_t u = union_find(lib, e, mode);
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const double dens = mat.density[i];
    sigma += dens * nuclide_xs_from_union(lib, mat.nuclides[i], u, e);
  }
  return sigma;
}

XsSet macro_xs_search(const Library& lib, int material, double e) {
  const auto& mat = lib.material(material);
  XsSet sigma;
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const double dens = mat.density[i];
    sigma += dens * lib.nuclide(mat.nuclides[i]).evaluate(e);
  }
  return sigma;
}

void macro_xs_banked_scalar(const Library& lib, int material,
                            std::span<const double> energies,
                            std::span<XsSet> out, const XsLookupOptions& opt) {
  assert(energies.size() == out.size());
  for (std::size_t j = 0; j < energies.size(); ++j) {
    out[j] = macro_xs_history(lib, material, energies[j], opt);
  }
}

void macro_xs_banked(const Library& lib, int material,
                     std::span<const double> energies, std::span<XsSet> out,
                     const XsLookupOptions& opt) {
  assert(lib.finalized());
  assert(energies.size() == out.size());
  if (energies.empty()) return;
  const auto& mat = lib.material(material);
  const auto& ug = lib.union_grid();
  const auto& hg = lib.hash_grid();
  const GridSearch mode = effective_mode(lib, opt.search);
  const int nn = static_cast<int>(mat.size());

  kern::BankedView v;
  v.fl = flat_view(lib.flat());
  v.mat = material_view(mat);

  const std::int32_t* us = nullptr;
  if (mode == GridSearch::hash_nuclide) {
    // Tier (b): the kernel resolves every nuclide's EXACT interval from the
    // double index itself (us == nullptr signals that path). Hand it the
    // per-bucket starts plus a staging row padded to a slot-block boundary
    // so its full-lane loads stay in bounds at every lane width.
    const kern::HashGridView hv = hg.view();
    v.nuclide_start = hg.nuclide_row(0);
    v.nn_total = static_cast<std::int32_t>(lib.n_nuclides());
    v.hg_h0 = hv.h0;
    v.hg_span = hv.span;
    v.hg_scale = hv.scale;
    auto& s = nidx_scratch();
    const int npad = simd::round_up(nn, kern::kAccSlots);
    s.resize(static_cast<std::size_t>(npad));
    for (int i = nn; i < npad; ++i) {
      s[static_cast<std::size_t>(i)] = 0;  // harmless dead lanes
    }
    v.nidx_scratch = s.data();
  } else {
    // Tier (c): one batched SIMD search for the whole bank replaces the
    // per-particle scalar upper_bound (binary mode resolves the same rows
    // with the scalar find — identical indices, the ablation baseline).
    v.imap = ug.imap.data();
    v.imap_stride = static_cast<std::int32_t>(ug.n_nuclides);
    v.walk_bound = static_cast<std::int32_t>(ug.walk_bound);
    us = resolve_union_rows(lib, mode, energies);
  }
  kern::active_isa_kernels().xs_banked(
      v, energies.data(), static_cast<std::int64_t>(energies.size()), us,
      out.data());
}

void macro_xs_banked_outer(const Library& lib, int material,
                           std::span<const double> energies,
                           std::span<XsSet> out, const XsLookupOptions& opt) {
  assert(lib.finalized());
  if (energies.empty()) return;
  const auto& mat = lib.material(material);
  const auto& ug = lib.union_grid();
  // The lane-per-particle tiles read the union imap by construction, so the
  // double-indexed tier degenerates to the plain hash search here.
  GridSearch mode = effective_mode(lib, opt.search);
  if (mode == GridSearch::hash_nuclide) mode = GridSearch::hash;

  kern::BankedView v;
  v.fl = flat_view(lib.flat());
  v.mat = material_view(mat);
  v.imap = ug.imap.data();
  v.imap_stride = static_cast<std::int32_t>(ug.n_nuclides);
  v.walk_bound = static_cast<std::int32_t>(ug.walk_bound);
  const std::int32_t* us = resolve_union_rows(lib, mode, energies);
  kern::active_isa_kernels().xs_banked_outer(
      v, energies.data(), static_cast<std::int64_t>(energies.size()), us,
      out.data());
}

double macro_total_history(const Library& lib, int material, double e,
                           const XsLookupOptions& opt) {
  assert(lib.finalized());
  const auto& mat = lib.material(material);
  const auto& ug = lib.union_grid();
  const GridSearch mode = effective_mode(lib, opt.search);
  double sigma = 0.0;
  if (mode == GridSearch::hash_nuclide) {
    const auto& hg = lib.hash_grid();
    const int b = hg.bucket_of(e);
    const std::int32_t* row = hg.nuclide_row(b);
    const std::int32_t* row_hi = hg.nuclide_row(b + 1);
    for (std::size_t i = 0; i < mat.size(); ++i) {
      const int nuc = mat.nuclides[i];
      const auto& n = lib.nuclide(nuc);
      const std::size_t idx = nuclide_find_hash(n, row, row_hi, nuc, e);
      const double e0 = n.energy[idx];
      const double e1 = n.energy[idx + 1];
      const double f = std::clamp((e - e0) / (e1 - e0), 0.0, 1.0);
      sigma += mat.density[i] *
               (static_cast<double>(n.total[idx]) +
                f * (static_cast<double>(n.total[idx + 1]) -
                     static_cast<double>(n.total[idx])));
    }
    return sigma;
  }
  const std::size_t u = union_find(lib, e, mode);
  const std::int32_t* imap_row =
      ug.imap.data() + u * static_cast<std::size_t>(ug.n_nuclides);
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const int nuc = mat.nuclides[i];
    const auto& n = lib.nuclide(nuc);
    std::size_t idx = static_cast<std::size_t>(imap_row[nuc]);
    const std::size_t last = n.grid_size() - 2;
    for (int w = 0; w < ug.walk_bound; ++w) {
      if (idx < last && n.energy[idx + 1] <= e) {
        ++idx;
      } else {
        break;
      }
    }
    const double e0 = n.energy[idx];
    const double e1 = n.energy[idx + 1];
    const double f = std::clamp((e - e0) / (e1 - e0), 0.0, 1.0);
    sigma += mat.density[i] *
             (static_cast<double>(n.total[idx]) +
              f * (static_cast<double>(n.total[idx + 1]) -
                   static_cast<double>(n.total[idx])));
  }
  return sigma;
}

void macro_total_banked(const Library& lib, int material,
                        std::span<const double> energies,
                        std::span<double> out, const XsLookupOptions& opt) {
  assert(lib.finalized());
  assert(energies.size() == out.size());
  if (energies.empty()) return;
  const auto& mat = lib.material(material);
  const auto& ug = lib.union_grid();
  // The particle tiles read the union imap by construction, so the
  // double-indexed tier degenerates to the plain hash search (which selects
  // the same interval as binary, bit-for-bit).
  GridSearch tile_mode = effective_mode(lib, opt.search);
  if (tile_mode == GridSearch::hash_nuclide) tile_mode = GridSearch::hash;

  kern::BankedView v;
  v.fl = flat_view(lib.flat());
  v.mat = material_view(mat);
  v.imap = ug.imap.data();
  v.imap_stride = static_cast<std::int32_t>(ug.n_nuclides);
  v.walk_bound = static_cast<std::int32_t>(ug.walk_bound);
  // Tier (c): resolve every particle's union interval in one batched SIMD
  // search before the kernel's tiled sweep.
  const std::int32_t* us = resolve_union_rows(lib, tile_mode, energies);
  kern::active_isa_kernels().total_banked(
      v, energies.data(), static_cast<std::int64_t>(energies.size()), us,
      out.data());
}

// ---------------------------------------------------------------------------
// AoS ablation
// ---------------------------------------------------------------------------

AosLibrary::AosLibrary(const Library& lib) {
  nuclides_.resize(static_cast<std::size_t>(lib.n_nuclides()));
  for (int n = 0; n < lib.n_nuclides(); ++n) {
    const auto& nuc = lib.nuclide(n);
    auto& v = nuclides_[static_cast<std::size_t>(n)];
    v.resize(nuc.grid_size());
    for (std::size_t i = 0; i < nuc.grid_size(); ++i) {
      v[i] = AosPoint{nuc.energy[i], nuc.total[i], nuc.scatter[i],
                      nuc.absorption[i], nuc.fission[i]};
    }
  }
}

XsSet AosLibrary::evaluate(int nuclide, double e) const {
  const auto& v = nuclides_[static_cast<std::size_t>(nuclide)];
  // Binary search over the strided energy member.
  std::size_t lo = 0;
  std::size_t hi = v.size() - 1;
  if (e <= v.front().energy) {
    hi = 1;
  } else if (e >= v.back().energy) {
    lo = v.size() - 2;
  } else {
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      if (v[mid].energy <= e) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  const AosPoint& a = v[lo];
  const AosPoint& b = v[lo + 1];
  double f = (e - a.energy) / (b.energy - a.energy);
  f = std::clamp(f, 0.0, 1.0);
  const auto lerp = [&](float x, float y) {
    return static_cast<double>(x) +
           f * (static_cast<double>(y) - static_cast<double>(x));
  };
  return XsSet{lerp(a.total, b.total), lerp(a.scatter, b.scatter),
               lerp(a.absorption, b.absorption), lerp(a.fission, b.fission)};
}

XsSet macro_xs_aos(const AosLibrary& aos, const Material& mat, double e) {
  XsSet sigma;
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const double dens = mat.density[i];
    sigma += dens * aos.evaluate(mat.nuclides[i], e);
  }
  return sigma;
}

}  // namespace vmc::xs
