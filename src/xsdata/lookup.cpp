#include "xsdata/lookup.hpp"

#include <algorithm>
#include <cassert>

#include "simd/simd.hpp"

namespace vmc::xs {

namespace {

using simd::Mask;
using simd::Vec;

constexpr int kLanes = simd::native_lanes<float>;
using VF = Vec<float, kLanes>;
using VI = Vec<std::int32_t, kLanes>;

/// Scalar per-nuclide contribution given a union-grid interval, with the
/// bounded walk that recovers the exact nuclide interval when the union grid
/// is thinned.
inline XsSet nuclide_xs_from_union(const Library& lib, int nuc, std::size_t u,
                                   double e) {
  const auto& ug = lib.union_grid();
  const auto& n = lib.nuclide(nuc);
  std::size_t idx = static_cast<std::size_t>(
      ug.imap[u * static_cast<std::size_t>(ug.n_nuclides) +
              static_cast<std::size_t>(nuc)]);
  const std::size_t last = n.grid_size() - 2;
  for (int w = 0; w < ug.walk_bound; ++w) {
    if (idx < last && n.energy[idx + 1] <= e) {
      ++idx;
    } else {
      break;
    }
  }
  return n.evaluate_at(idx, e);
}

}  // namespace

XsSet macro_xs_history(const Library& lib, int material, double e) {
  assert(lib.finalized());
  const auto& mat = lib.material(material);
  const std::size_t u = lib.union_grid().find(e);
  XsSet sigma;
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const double dens = mat.density[i];
    sigma += dens * nuclide_xs_from_union(lib, mat.nuclides[i], u, e);
  }
  return sigma;
}

XsSet macro_xs_search(const Library& lib, int material, double e) {
  const auto& mat = lib.material(material);
  XsSet sigma;
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const double dens = mat.density[i];
    sigma += dens * lib.nuclide(mat.nuclides[i]).evaluate(e);
  }
  return sigma;
}

void macro_xs_banked_scalar(const Library& lib, int material,
                            std::span<const double> energies,
                            std::span<XsSet> out) {
  assert(energies.size() == out.size());
  for (std::size_t j = 0; j < energies.size(); ++j) {
    out[j] = macro_xs_history(lib, material, energies[j]);
  }
}

void macro_xs_banked(const Library& lib, int material,
                     std::span<const double> energies, std::span<XsSet> out) {
  assert(lib.finalized());
  assert(energies.size() == out.size());
  const auto& mat = lib.material(material);
  const auto& fl = lib.flat();
  const auto& ug = lib.union_grid();
  const int nn = static_cast<int>(mat.size());
  const int nvec = nn / kLanes * kLanes;
  const std::int32_t* imap = ug.imap.data();
  const std::size_t stride = static_cast<std::size_t>(ug.n_nuclides);

  for (std::size_t j = 0; j < energies.size(); ++j) {
    const double e = energies[j];
    const std::size_t u = ug.find(e);
    const std::int32_t* imap_row = imap + u * stride;
    const float ef = static_cast<float>(e);
    const VF ev(ef);

    VF acc_t(0.0f), acc_s(0.0f), acc_a(0.0f), acc_f(0.0f);
    for (int n = 0; n < nvec; n += kLanes) {
      const VI nucid = VI::loadu(mat.nuclides.data() + n);
      const VI base = VI::gather(fl.offset.data(), nucid);
      VI idx = VI::gather(imap_row, nucid) + base;
      // Bounded walk to the exact interval (skipped entirely for an exact
      // union, which also avoids the grid-size gather).
      if (ug.walk_bound > 0) {
        const VI gsz = VI::gather(fl.grid_size.data(), nucid);
        // Highest valid interval start for each lane's nuclide.
        const VI limit = base + gsz - VI(2);
        for (int w = 0; w < ug.walk_bound; ++w) {
          const VF e_next = VF::gather(fl.energy_f.data(), idx + VI(1));
          const auto need = (e_next <= ev).m & (idx < limit).m;
          idx.v -= need;  // mask lanes are -1 where true
        }
      }
      const VF e_lo = VF::gather(fl.energy_f.data(), idx);
      const VF e_hi = VF::gather(fl.energy_f.data(), idx + VI(1));
      VF f = (ev - e_lo) / (e_hi - e_lo);
      f = simd::min(simd::max(f, VF(0.0f)), VF(1.0f));
      const VF dens = VF::loadu(mat.density.data() + n);

      const auto channel = [&](const float* xs, VF& acc) {
        const VF lo = VF::gather(xs, idx);
        const VF hi = VF::gather(xs, idx + VI(1));
        acc = simd::fma(dens, simd::fma(f, hi - lo, lo), acc);
      };
      channel(fl.total.data(), acc_t);
      channel(fl.scatter.data(), acc_s);
      channel(fl.absorption.data(), acc_a);
      channel(fl.fission.data(), acc_f);
    }

    XsSet sigma{acc_t.hsum(), acc_s.hsum(), acc_a.hsum(), acc_f.hsum()};
    // Scalar tail over the remaining nuclides.
    for (int n = nvec; n < nn; ++n) {
      const double dens = mat.density[static_cast<std::size_t>(n)];
      sigma += dens * nuclide_xs_from_union(
                          lib, mat.nuclides[static_cast<std::size_t>(n)], u, e);
    }
    out[j] = sigma;
  }
}

void macro_xs_banked_outer(const Library& lib, int material,
                           std::span<const double> energies,
                           std::span<XsSet> out) {
  assert(lib.finalized());
  const auto& mat = lib.material(material);
  const auto& fl = lib.flat();
  const auto& ug = lib.union_grid();
  const int nn = static_cast<int>(mat.size());
  const std::size_t np = energies.size();
  const std::size_t pvec = np / kLanes * kLanes;
  const std::size_t stride = static_cast<std::size_t>(ug.n_nuclides);

  for (std::size_t j = 0; j < pvec; j += kLanes) {
    // Per-lane particle state: energy and union-row offset.
    VF ev;
    VI urow;
    for (int l = 0; l < kLanes; ++l) {
      const double e = energies[j + static_cast<std::size_t>(l)];
      ev.set(l, static_cast<float>(e));
      urow.set(l, static_cast<std::int32_t>(ug.find(e) * stride));
    }
    VF acc_t(0.0f), acc_s(0.0f), acc_a(0.0f), acc_f(0.0f);
    for (int n = 0; n < nn; ++n) {
      const std::int32_t nucid = mat.nuclides[static_cast<std::size_t>(n)];
      const std::int32_t base = fl.offset[static_cast<std::size_t>(nucid)];
      const std::int32_t gsz = fl.grid_size[static_cast<std::size_t>(nucid)];
      VI idx = VI::gather(ug.imap.data(), urow + VI(nucid)) + VI(base);
      const VI limit(base + gsz - 2);
      for (int w = 0; w < ug.walk_bound; ++w) {
        const VF e_next = VF::gather(fl.energy_f.data(), idx + VI(1));
        const auto need = (e_next <= ev).m & (idx < limit).m;
        idx.v -= need;
      }
      const VF e_lo = VF::gather(fl.energy_f.data(), idx);
      const VF e_hi = VF::gather(fl.energy_f.data(), idx + VI(1));
      VF f = (ev - e_lo) / (e_hi - e_lo);
      f = simd::min(simd::max(f, VF(0.0f)), VF(1.0f));
      const VF dens(mat.density[static_cast<std::size_t>(n)]);
      const auto channel = [&](const float* xs, VF& acc) {
        const VF lo = VF::gather(xs, idx);
        const VF hi = VF::gather(xs, idx + VI(1));
        acc = simd::fma(dens, simd::fma(f, hi - lo, lo), acc);
      };
      channel(fl.total.data(), acc_t);
      channel(fl.scatter.data(), acc_s);
      channel(fl.absorption.data(), acc_a);
      channel(fl.fission.data(), acc_f);
    }
    for (int l = 0; l < kLanes; ++l) {
      out[j + static_cast<std::size_t>(l)] =
          XsSet{static_cast<double>(acc_t[l]), static_cast<double>(acc_s[l]),
                static_cast<double>(acc_a[l]), static_cast<double>(acc_f[l])};
    }
  }
  // Tail particles: scalar path.
  for (std::size_t j = pvec; j < np; ++j) {
    out[j] = macro_xs_history(lib, material, energies[j]);
  }
}

double macro_total_history(const Library& lib, int material, double e) {
  assert(lib.finalized());
  const auto& mat = lib.material(material);
  const auto& ug = lib.union_grid();
  const std::size_t u = ug.find(e);
  const std::int32_t* imap_row =
      ug.imap.data() + u * static_cast<std::size_t>(ug.n_nuclides);
  double sigma = 0.0;
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const int nuc = mat.nuclides[i];
    const auto& n = lib.nuclide(nuc);
    std::size_t idx = static_cast<std::size_t>(imap_row[nuc]);
    const std::size_t last = n.grid_size() - 2;
    for (int w = 0; w < ug.walk_bound; ++w) {
      if (idx < last && n.energy[idx + 1] <= e) {
        ++idx;
      } else {
        break;
      }
    }
    const double e0 = n.energy[idx];
    const double e1 = n.energy[idx + 1];
    const double f = std::clamp((e - e0) / (e1 - e0), 0.0, 1.0);
    sigma += mat.density[i] *
             (static_cast<double>(n.total[idx]) +
              f * (static_cast<double>(n.total[idx + 1]) -
                   static_cast<double>(n.total[idx])));
  }
  return sigma;
}

void macro_total_banked(const Library& lib, int material,
                        std::span<const double> energies,
                        std::span<double> out) {
  assert(lib.finalized());
  assert(energies.size() == out.size());
  const auto& mat = lib.material(material);
  const auto& fl = lib.flat();
  const auto& ug = lib.union_grid();
  const int nn = static_cast<int>(mat.size());
  const int nvec = nn / kLanes * kLanes;
  const std::size_t stride = static_cast<std::size_t>(ug.n_nuclides);

  // Tile P particles against each nuclide block: the kernel is bound by
  // gather latency on the (much larger than cache) grid data, and P
  // independent gather chains give the memory system P times the
  // parallelism. On the in-order MIC the vector unit alone provided this
  // effect; on out-of-order AVX-512 hosts the tiling is what beats the
  // scalar path (measured ~1.5x on H.M. Large; see bench/fig2).
  constexpr int P = 8;
  std::size_t j = 0;
  for (; j + P <= energies.size(); j += P) {
    const std::int32_t* rows[P];
    VF ev[P];
    VF acc[P];
    for (int p = 0; p < P; ++p) {
      rows[p] = ug.imap.data() + ug.find(energies[j + p]) * stride;
      ev[p] = VF(static_cast<float>(energies[j + p]));
      acc[p] = VF(0.0f);
    }
    for (int n = 0; n < nvec; n += kLanes) {
      const VI nucid = VI::loadu(mat.nuclides.data() + n);
      const VI base = VI::gather(fl.offset.data(), nucid);
      const VF dens = VF::loadu(mat.density.data() + n);
      VI idx[P];
      for (int p = 0; p < P; ++p) {
        idx[p] = VI::gather(rows[p], nucid) + base;
      }
      if (ug.walk_bound > 0) {
        const VI gsz = VI::gather(fl.grid_size.data(), nucid);
        const VI limit = base + gsz - VI(2);
        for (int w = 0; w < ug.walk_bound; ++w) {
          for (int p = 0; p < P; ++p) {
            const VF e_next = VF::gather(fl.energy_f.data(), idx[p] + VI(1));
            const auto need = (e_next <= ev[p]).m & (idx[p] < limit).m;
            idx[p].v -= need;
          }
        }
      }
      VF e_lo[P], e_hi[P], x_lo[P], x_hi[P];
      for (int p = 0; p < P; ++p) e_lo[p] = VF::gather(fl.energy_f.data(), idx[p]);
      for (int p = 0; p < P; ++p) e_hi[p] = VF::gather(fl.energy_f.data(), idx[p] + VI(1));
      for (int p = 0; p < P; ++p) x_lo[p] = VF::gather(fl.total.data(), idx[p]);
      for (int p = 0; p < P; ++p) x_hi[p] = VF::gather(fl.total.data(), idx[p] + VI(1));
      for (int p = 0; p < P; ++p) {
        VF f = (ev[p] - e_lo[p]) / (e_hi[p] - e_lo[p]);
        f = simd::min(simd::max(f, VF(0.0f)), VF(1.0f));
        acc[p] = simd::fma(dens, simd::fma(f, x_hi[p] - x_lo[p], x_lo[p]),
                           acc[p]);
      }
    }
    for (int p = 0; p < P; ++p) {
      double sigma = acc[p].hsum();
      const std::size_t u = static_cast<std::size_t>(
          (rows[p] - ug.imap.data()) / static_cast<std::ptrdiff_t>(stride));
      for (int n = nvec; n < nn; ++n) {
        sigma += mat.density[static_cast<std::size_t>(n)] *
                 nuclide_xs_from_union(
                     lib, mat.nuclides[static_cast<std::size_t>(n)], u,
                     energies[j + p])
                     .total;
      }
      out[j + p] = sigma;
    }
  }
  // Tail particles: scalar path.
  for (; j < energies.size(); ++j) {
    out[j] = macro_total_history(lib, material, energies[j]);
  }
}

// ---------------------------------------------------------------------------
// AoS ablation
// ---------------------------------------------------------------------------

AosLibrary::AosLibrary(const Library& lib) {
  nuclides_.resize(static_cast<std::size_t>(lib.n_nuclides()));
  for (int n = 0; n < lib.n_nuclides(); ++n) {
    const auto& nuc = lib.nuclide(n);
    auto& v = nuclides_[static_cast<std::size_t>(n)];
    v.resize(nuc.grid_size());
    for (std::size_t i = 0; i < nuc.grid_size(); ++i) {
      v[i] = AosPoint{nuc.energy[i], nuc.total[i], nuc.scatter[i],
                      nuc.absorption[i], nuc.fission[i]};
    }
  }
}

XsSet AosLibrary::evaluate(int nuclide, double e) const {
  const auto& v = nuclides_[static_cast<std::size_t>(nuclide)];
  // Binary search over the strided energy member.
  std::size_t lo = 0;
  std::size_t hi = v.size() - 1;
  if (e <= v.front().energy) {
    hi = 1;
  } else if (e >= v.back().energy) {
    lo = v.size() - 2;
  } else {
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      if (v[mid].energy <= e) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  const AosPoint& a = v[lo];
  const AosPoint& b = v[lo + 1];
  double f = (e - a.energy) / (b.energy - a.energy);
  f = std::clamp(f, 0.0, 1.0);
  const auto lerp = [&](float x, float y) {
    return static_cast<double>(x) +
           f * (static_cast<double>(y) - static_cast<double>(x));
  };
  return XsSet{lerp(a.total, b.total), lerp(a.scatter, b.scatter),
               lerp(a.absorption, b.absorption), lerp(a.fission, b.fission)};
}

XsSet macro_xs_aos(const AosLibrary& aos, const Material& mat, double e) {
  XsSet sigma;
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const double dens = mat.density[i];
    sigma += dens * aos.evaluate(mat.nuclides[i], e);
  }
  return sigma;
}

}  // namespace vmc::xs
