#include "xsdata/lookup.hpp"

#include <algorithm>
#include <cassert>

#include "simd/simd.hpp"

namespace vmc::xs {

namespace {

using simd::Mask;
using simd::Vec;

constexpr int kLanes = simd::width_v<float>;
using VF = Vec<float, kLanes>;
using VI = Vec<std::int32_t, kLanes>;

/// Downgrade the requested search mode to what this library can serve (the
/// accelerator is always built by finalize(); the guards cover libraries
/// rebuilt without the tier-b index).
inline GridSearch effective_mode(const Library& lib, GridSearch s) {
  if (s != GridSearch::binary && lib.hash_grid().empty()) {
    return GridSearch::binary;
  }
  if (s == GridSearch::hash_nuclide && !lib.hash_grid().has_nuclide_index()) {
    return GridSearch::hash;
  }
  return s;
}

/// Union interval via the selected scalar search. The hash path selects the
/// SAME interval as the binary path, bit-for-bit.
inline std::size_t union_find(const Library& lib, double e, GridSearch s) {
  const auto& ug = lib.union_grid();
  return s == GridSearch::binary ? ug.find(e)
                                 : lib.hash_grid().find(ug.energy, e);
}

/// Per-call scratch for the batched union-interval search (tier c) and the
/// per-particle nuclide intervals (tier b). Thread-local so event-mode
/// worker threads never share or reallocate in steady state.
simd::aligned_vector<std::int32_t>& u_scratch() {
  static thread_local simd::aligned_vector<std::int32_t> s;
  return s;
}
simd::aligned_vector<std::int32_t>& nidx_scratch() {
  static thread_local simd::aligned_vector<std::int32_t> s;
  return s;
}

/// Tier (b): exact interval of nuclide `nuc` for energy `e` from the hash
/// grid's double index — a bounded walk on the nuclide's own grid, bracketed
/// by the bucket rows for b and b+1. No union imap involved.
inline std::size_t nuclide_find_hash(const Nuclide& n, const std::int32_t* row,
                                     const std::int32_t* row_hi, int nuc,
                                     double e) {
  std::size_t idx = static_cast<std::size_t>(row[nuc]);
  const std::size_t hi = static_cast<std::size_t>(row_hi[nuc]);
  while (idx < hi && n.energy[idx + 1] <= e) ++idx;
  return idx;
}

/// Scalar per-nuclide contribution given a union-grid interval, with the
/// bounded walk that recovers the exact nuclide interval when the union grid
/// is thinned.
inline XsSet nuclide_xs_from_union(const Library& lib, int nuc, std::size_t u,
                                   double e) {
  const auto& ug = lib.union_grid();
  const auto& n = lib.nuclide(nuc);
  std::size_t idx = static_cast<std::size_t>(
      ug.imap[u * static_cast<std::size_t>(ug.n_nuclides) +
              static_cast<std::size_t>(nuc)]);
  const std::size_t last = n.grid_size() - 2;
  for (int w = 0; w < ug.walk_bound; ++w) {
    if (idx < last && n.energy[idx + 1] <= e) {
      ++idx;
    } else {
      break;
    }
  }
  return n.evaluate_at(idx, e);
}

}  // namespace

XsSet macro_xs_history(const Library& lib, int material, double e,
                       const XsLookupOptions& opt) {
  assert(lib.finalized());
  const auto& mat = lib.material(material);
  const GridSearch mode = effective_mode(lib, opt.search);
  XsSet sigma;
  if (mode == GridSearch::hash_nuclide) {
    const auto& hg = lib.hash_grid();
    const int b = hg.bucket_of(e);
    const std::int32_t* row = hg.nuclide_row(b);
    const std::int32_t* row_hi = hg.nuclide_row(b + 1);
    for (std::size_t i = 0; i < mat.size(); ++i) {
      const int nuc = mat.nuclides[i];
      const auto& n = lib.nuclide(nuc);
      sigma += mat.density[i] *
               n.evaluate_at(nuclide_find_hash(n, row, row_hi, nuc, e), e);
    }
    return sigma;
  }
  const std::size_t u = union_find(lib, e, mode);
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const double dens = mat.density[i];
    sigma += dens * nuclide_xs_from_union(lib, mat.nuclides[i], u, e);
  }
  return sigma;
}

XsSet macro_xs_search(const Library& lib, int material, double e) {
  const auto& mat = lib.material(material);
  XsSet sigma;
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const double dens = mat.density[i];
    sigma += dens * lib.nuclide(mat.nuclides[i]).evaluate(e);
  }
  return sigma;
}

void macro_xs_banked_scalar(const Library& lib, int material,
                            std::span<const double> energies,
                            std::span<XsSet> out, const XsLookupOptions& opt) {
  assert(energies.size() == out.size());
  for (std::size_t j = 0; j < energies.size(); ++j) {
    out[j] = macro_xs_history(lib, material, energies[j], opt);
  }
}

void macro_xs_banked(const Library& lib, int material,
                     std::span<const double> energies, std::span<XsSet> out,
                     const XsLookupOptions& opt) {
  assert(lib.finalized());
  assert(energies.size() == out.size());
  const auto& mat = lib.material(material);
  const auto& fl = lib.flat();
  const auto& ug = lib.union_grid();
  const auto& hg = lib.hash_grid();
  const GridSearch mode = effective_mode(lib, opt.search);
  const int nn = static_cast<int>(mat.size());
  const std::int32_t* imap = ug.imap.data();
  const std::size_t stride = static_cast<std::size_t>(ug.n_nuclides);

  // Tier (c): one batched SIMD search for the whole bank replaces the
  // per-particle scalar upper_bound.
  const std::int32_t* us = nullptr;
  if (mode == GridSearch::hash) {
    auto& s = u_scratch();
    s.resize(energies.size());
    hg.find_banked(ug.energy, energies, s.data());
    us = s.data();
  }
  // Tier (b): per-particle exact nuclide intervals, padded to full lanes so
  // the vector loop can load them unconditionally.
  std::int32_t* nidx = nullptr;
  const int npad = (nn + kLanes - 1) / kLanes * kLanes;
  if (mode == GridSearch::hash_nuclide) {
    auto& s = nidx_scratch();
    s.resize(static_cast<std::size_t>(npad));
    nidx = s.data();
    for (int i = nn; i < npad; ++i) nidx[i] = 0;  // harmless dead lanes
  }

  for (std::size_t j = 0; j < energies.size(); ++j) {
    const double e = energies[j];
    const std::int32_t* imap_row = nullptr;
    if (mode == GridSearch::hash_nuclide) {
      // Resolve every nuclide's EXACT interval from the double index (walks
      // in double precision on the flat grid; the union imap is never read).
      const int b = hg.bucket_of(e);
      const std::int32_t* row = hg.nuclide_row(b);
      const std::int32_t* row_hi = hg.nuclide_row(b + 1);
      for (int i = 0; i < nn; ++i) {
        const std::int32_t nuc = mat.nuclides[static_cast<std::size_t>(i)];
        const std::int32_t base = fl.offset[static_cast<std::size_t>(nuc)];
        const double* ge = fl.energy.data() + base;
        std::int32_t idx = row[nuc];
        const std::int32_t hi = row_hi[nuc];
        while (idx < hi && ge[idx + 1] <= e) ++idx;
        nidx[i] = base + idx;
      }
    } else {
      const std::size_t u =
          us != nullptr ? static_cast<std::size_t>(us[j]) : ug.find(e);
      imap_row = imap + u * stride;
    }
    const float ef = static_cast<float>(e);
    const VF ev(ef);

    VF acc_t(0.0f), acc_s(0.0f), acc_a(0.0f), acc_f(0.0f);
    for (int n = 0; n < nn; n += kLanes) {
      // Masked remainder: the last block loads partial lanes with density 0,
      // so dead lanes gather nuclide 0's first interval and contribute
      // exactly nothing (same idiom as the distance stage).
      const int rem = nn - n;
      const VI nucid =
          rem >= kLanes
              ? VI::loadu(mat.nuclides.data() + n)
              : VI::load_partial(mat.nuclides.data() + n, rem, 0);
      const VF dens =
          rem >= kLanes
              ? VF::loadu(mat.density.data() + n)
              : VF::load_partial(mat.density.data() + n, rem, 0.0f);
      VI idx;
      if (mode == GridSearch::hash_nuclide) {
        idx = VI::loadu(nidx + n);
      } else {
        const VI base = VI::gather(fl.offset.data(), nucid);
        idx = VI::gather(imap_row, nucid) + base;
        // Bounded walk to the exact interval (skipped entirely for an exact
        // union, which also avoids the grid-size gather).
        if (ug.walk_bound > 0) {
          const VI gsz = VI::gather(fl.grid_size.data(), nucid);
          // Highest valid interval start for each lane's nuclide.
          const VI limit = base + gsz - VI(2);
          for (int w = 0; w < ug.walk_bound; ++w) {
            const VF e_next = VF::gather(fl.energy_f.data(), idx + VI(1));
            const auto need = (e_next <= ev).m & (idx < limit).m;
            idx.v -= need;  // mask lanes are -1 where true
          }
        }
      }
      const VF e_lo = VF::gather(fl.energy_f.data(), idx);
      const VF e_hi = VF::gather(fl.energy_f.data(), idx + VI(1));
      VF f = (ev - e_lo) / (e_hi - e_lo);
      f = simd::min(simd::max(f, VF(0.0f)), VF(1.0f));

      const auto channel = [&](const float* xs, VF& acc) {
        const VF lo = VF::gather(xs, idx);
        const VF hi = VF::gather(xs, idx + VI(1));
        acc = simd::fma(dens, simd::fma(f, hi - lo, lo), acc);
      };
      channel(fl.total.data(), acc_t);
      channel(fl.scatter.data(), acc_s);
      channel(fl.absorption.data(), acc_a);
      channel(fl.fission.data(), acc_f);
    }

    out[j] = XsSet{acc_t.hsum(), acc_s.hsum(), acc_a.hsum(), acc_f.hsum()};
  }
}

void macro_xs_banked_outer(const Library& lib, int material,
                           std::span<const double> energies,
                           std::span<XsSet> out, const XsLookupOptions& opt) {
  assert(lib.finalized());
  const auto& mat = lib.material(material);
  const auto& fl = lib.flat();
  const auto& ug = lib.union_grid();
  const auto& hg = lib.hash_grid();
  // The lane-per-particle tiles read the union imap by construction, so the
  // double-indexed tier degenerates to the plain hash search here.
  GridSearch mode = effective_mode(lib, opt.search);
  if (mode == GridSearch::hash_nuclide) mode = GridSearch::hash;
  const int nn = static_cast<int>(mat.size());
  const std::size_t np = energies.size();
  const std::size_t stride = static_cast<std::size_t>(ug.n_nuclides);

  for (std::size_t j = 0; j < np; j += kLanes) {
    // Masked particle remainder: the final tile replicates its last real
    // particle into the dead lanes (valid energies and union rows, so every
    // gather below stays in bounds) and stores only the real lanes back.
    const int rem = static_cast<int>(std::min<std::size_t>(kLanes, np - j));
    std::int32_t ubuf[kLanes];
    float ebuf[kLanes];
    if (mode == GridSearch::hash) {
      hg.find_banked(ug.energy,
                     energies.subspan(j, static_cast<std::size_t>(rem)), ubuf);
    } else {
      for (int l = 0; l < rem; ++l) {
        ubuf[l] = static_cast<std::int32_t>(
            ug.find(energies[j + static_cast<std::size_t>(l)]));
      }
    }
    for (int l = 0; l < rem; ++l) {
      ebuf[l] = static_cast<float>(energies[j + static_cast<std::size_t>(l)]);
    }
    // Per-lane particle state: energy and union-row offset.
    const VF ev = VF::load_partial(ebuf, rem, ebuf[rem - 1]);
    const VI urow = VI::load_partial(ubuf, rem, ubuf[rem - 1]) *
                    VI(static_cast<std::int32_t>(stride));
    VF acc_t(0.0f), acc_s(0.0f), acc_a(0.0f), acc_f(0.0f);
    for (int n = 0; n < nn; ++n) {
      const std::int32_t nucid = mat.nuclides[static_cast<std::size_t>(n)];
      const std::int32_t base = fl.offset[static_cast<std::size_t>(nucid)];
      const std::int32_t gsz = fl.grid_size[static_cast<std::size_t>(nucid)];
      VI idx = VI::gather(ug.imap.data(), urow + VI(nucid)) + VI(base);
      const VI limit(base + gsz - 2);
      for (int w = 0; w < ug.walk_bound; ++w) {
        const VF e_next = VF::gather(fl.energy_f.data(), idx + VI(1));
        const auto need = (e_next <= ev).m & (idx < limit).m;
        idx.v -= need;
      }
      const VF e_lo = VF::gather(fl.energy_f.data(), idx);
      const VF e_hi = VF::gather(fl.energy_f.data(), idx + VI(1));
      VF f = (ev - e_lo) / (e_hi - e_lo);
      f = simd::min(simd::max(f, VF(0.0f)), VF(1.0f));
      const VF dens(mat.density[static_cast<std::size_t>(n)]);
      const auto channel = [&](const float* xs, VF& acc) {
        const VF lo = VF::gather(xs, idx);
        const VF hi = VF::gather(xs, idx + VI(1));
        acc = simd::fma(dens, simd::fma(f, hi - lo, lo), acc);
      };
      channel(fl.total.data(), acc_t);
      channel(fl.scatter.data(), acc_s);
      channel(fl.absorption.data(), acc_a);
      channel(fl.fission.data(), acc_f);
    }
    for (int l = 0; l < rem; ++l) {
      out[j + static_cast<std::size_t>(l)] =
          XsSet{static_cast<double>(acc_t[l]), static_cast<double>(acc_s[l]),
                static_cast<double>(acc_a[l]), static_cast<double>(acc_f[l])};
    }
  }
}

double macro_total_history(const Library& lib, int material, double e,
                           const XsLookupOptions& opt) {
  assert(lib.finalized());
  const auto& mat = lib.material(material);
  const auto& ug = lib.union_grid();
  const GridSearch mode = effective_mode(lib, opt.search);
  double sigma = 0.0;
  if (mode == GridSearch::hash_nuclide) {
    const auto& hg = lib.hash_grid();
    const int b = hg.bucket_of(e);
    const std::int32_t* row = hg.nuclide_row(b);
    const std::int32_t* row_hi = hg.nuclide_row(b + 1);
    for (std::size_t i = 0; i < mat.size(); ++i) {
      const int nuc = mat.nuclides[i];
      const auto& n = lib.nuclide(nuc);
      const std::size_t idx = nuclide_find_hash(n, row, row_hi, nuc, e);
      const double e0 = n.energy[idx];
      const double e1 = n.energy[idx + 1];
      const double f = std::clamp((e - e0) / (e1 - e0), 0.0, 1.0);
      sigma += mat.density[i] *
               (static_cast<double>(n.total[idx]) +
                f * (static_cast<double>(n.total[idx + 1]) -
                     static_cast<double>(n.total[idx])));
    }
    return sigma;
  }
  const std::size_t u = union_find(lib, e, mode);
  const std::int32_t* imap_row =
      ug.imap.data() + u * static_cast<std::size_t>(ug.n_nuclides);
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const int nuc = mat.nuclides[i];
    const auto& n = lib.nuclide(nuc);
    std::size_t idx = static_cast<std::size_t>(imap_row[nuc]);
    const std::size_t last = n.grid_size() - 2;
    for (int w = 0; w < ug.walk_bound; ++w) {
      if (idx < last && n.energy[idx + 1] <= e) {
        ++idx;
      } else {
        break;
      }
    }
    const double e0 = n.energy[idx];
    const double e1 = n.energy[idx + 1];
    const double f = std::clamp((e - e0) / (e1 - e0), 0.0, 1.0);
    sigma += mat.density[i] *
             (static_cast<double>(n.total[idx]) +
              f * (static_cast<double>(n.total[idx + 1]) -
                   static_cast<double>(n.total[idx])));
  }
  return sigma;
}

void macro_total_banked(const Library& lib, int material,
                        std::span<const double> energies,
                        std::span<double> out, const XsLookupOptions& opt) {
  assert(lib.finalized());
  assert(energies.size() == out.size());
  const auto& mat = lib.material(material);
  const auto& fl = lib.flat();
  const auto& ug = lib.union_grid();
  const auto& hg = lib.hash_grid();
  // The particle tiles below read the union imap by construction, so the
  // double-indexed tier degenerates to the plain hash search (which selects
  // the same interval as binary, bit-for-bit).
  GridSearch tile_mode = effective_mode(lib, opt.search);
  if (tile_mode == GridSearch::hash_nuclide) tile_mode = GridSearch::hash;
  const int nn = static_cast<int>(mat.size());
  const std::size_t stride = static_cast<std::size_t>(ug.n_nuclides);

  // Tier (c): resolve every particle's union interval in one batched SIMD
  // search before the tiled sweep.
  const std::int32_t* us = nullptr;
  if (tile_mode == GridSearch::hash) {
    auto& s = u_scratch();
    s.resize(energies.size());
    hg.find_banked(ug.energy, energies, s.data());
    us = s.data();
  }

  // Tile P particles against each nuclide block: the kernel is bound by
  // gather latency on the (much larger than cache) grid data, and P
  // independent gather chains give the memory system P times the
  // parallelism. On the in-order MIC the vector unit alone provided this
  // effect; on out-of-order AVX-512 hosts the tiling is what beats the
  // scalar path (measured ~1.5x on H.M. Large; see bench/fig2).
  constexpr int P = 8;
  for (std::size_t j = 0; j < energies.size(); j += P) {
    // Masked particle remainder: dead tile slots replicate the last real
    // particle (valid union rows, in-bounds gathers) and are never stored.
    const int pr =
        static_cast<int>(std::min<std::size_t>(P, energies.size() - j));
    const std::int32_t* rows[P];
    VF ev[P];
    VF acc[P];
    for (int p = 0; p < P; ++p) {
      const std::size_t jp = j + static_cast<std::size_t>(p < pr ? p : pr - 1);
      const std::size_t u = us != nullptr ? static_cast<std::size_t>(us[jp])
                                          : ug.find(energies[jp]);
      rows[p] = ug.imap.data() + u * stride;
      ev[p] = VF(static_cast<float>(energies[jp]));
      acc[p] = VF(0.0f);
    }
    for (int n = 0; n < nn; n += kLanes) {
      // Masked nuclide remainder: the last block loads partial lanes with
      // density 0, same idiom as macro_xs_banked.
      const int rem = nn - n;
      const VI nucid = rem >= kLanes
                           ? VI::loadu(mat.nuclides.data() + n)
                           : VI::load_partial(mat.nuclides.data() + n, rem, 0);
      const VF dens =
          rem >= kLanes ? VF::loadu(mat.density.data() + n)
                        : VF::load_partial(mat.density.data() + n, rem, 0.0f);
      const VI base = VI::gather(fl.offset.data(), nucid);
      VI idx[P];
      for (int p = 0; p < P; ++p) {
        idx[p] = VI::gather(rows[p], nucid) + base;
      }
      if (ug.walk_bound > 0) {
        const VI gsz = VI::gather(fl.grid_size.data(), nucid);
        const VI limit = base + gsz - VI(2);
        for (int w = 0; w < ug.walk_bound; ++w) {
          for (int p = 0; p < P; ++p) {
            const VF e_next = VF::gather(fl.energy_f.data(), idx[p] + VI(1));
            const auto need = (e_next <= ev[p]).m & (idx[p] < limit).m;
            idx[p].v -= need;
          }
        }
      }
      VF e_lo[P], e_hi[P], x_lo[P], x_hi[P];
      for (int p = 0; p < P; ++p) e_lo[p] = VF::gather(fl.energy_f.data(), idx[p]);
      for (int p = 0; p < P; ++p) e_hi[p] = VF::gather(fl.energy_f.data(), idx[p] + VI(1));
      for (int p = 0; p < P; ++p) x_lo[p] = VF::gather(fl.total.data(), idx[p]);
      for (int p = 0; p < P; ++p) x_hi[p] = VF::gather(fl.total.data(), idx[p] + VI(1));
      for (int p = 0; p < P; ++p) {
        VF f = (ev[p] - e_lo[p]) / (e_hi[p] - e_lo[p]);
        f = simd::min(simd::max(f, VF(0.0f)), VF(1.0f));
        acc[p] = simd::fma(dens, simd::fma(f, x_hi[p] - x_lo[p], x_lo[p]),
                           acc[p]);
      }
    }
    for (int p = 0; p < pr; ++p) {
      out[j + static_cast<std::size_t>(p)] = acc[p].hsum();
    }
  }
}

// ---------------------------------------------------------------------------
// AoS ablation
// ---------------------------------------------------------------------------

AosLibrary::AosLibrary(const Library& lib) {
  nuclides_.resize(static_cast<std::size_t>(lib.n_nuclides()));
  for (int n = 0; n < lib.n_nuclides(); ++n) {
    const auto& nuc = lib.nuclide(n);
    auto& v = nuclides_[static_cast<std::size_t>(n)];
    v.resize(nuc.grid_size());
    for (std::size_t i = 0; i < nuc.grid_size(); ++i) {
      v[i] = AosPoint{nuc.energy[i], nuc.total[i], nuc.scatter[i],
                      nuc.absorption[i], nuc.fission[i]};
    }
  }
}

XsSet AosLibrary::evaluate(int nuclide, double e) const {
  const auto& v = nuclides_[static_cast<std::size_t>(nuclide)];
  // Binary search over the strided energy member.
  std::size_t lo = 0;
  std::size_t hi = v.size() - 1;
  if (e <= v.front().energy) {
    hi = 1;
  } else if (e >= v.back().energy) {
    lo = v.size() - 2;
  } else {
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      if (v[mid].energy <= e) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  const AosPoint& a = v[lo];
  const AosPoint& b = v[lo + 1];
  double f = (e - a.energy) / (b.energy - a.energy);
  f = std::clamp(f, 0.0, 1.0);
  const auto lerp = [&](float x, float y) {
    return static_cast<double>(x) +
           f * (static_cast<double>(y) - static_cast<double>(x));
  };
  return XsSet{lerp(a.total, b.total), lerp(a.scatter, b.scatter),
               lerp(a.absorption, b.absorption), lerp(a.fission, b.fission)};
}

XsSet macro_xs_aos(const AosLibrary& aos, const Material& mat, double e) {
  XsSet sigma;
  for (std::size_t i = 0; i < mat.size(); ++i) {
    const double dens = mat.density[i];
    sigma += dens * aos.evaluate(mat.nuclides[i], e);
  }
  return sigma;
}

}  // namespace vmc::xs
