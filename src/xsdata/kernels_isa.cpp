// Per-ISA backend bodies for the hot kernels: the banked hash-grid search,
// the three banked lookup kernels and the event-mode distance stage. This
// file is compiled FOUR times by src/xsdata/CMakeLists.txt — once per
// simd::IsaLevel, each with -DVMC_SIMD_LEVEL=<n> plus that level's -m flags
// and -ffp-contract=off — and each compilation defines exactly one
// kernel_table_<n>() accessor (declared in kernels.hpp).
//
// Rules for this TU (the comdat shield):
//  * everything except the accessor lives in an anonymous namespace, and all
//    simd:: types resolve inside a per-level VMC_SIMD_ABI inline namespace,
//    so no code here can be merged with another level's instantiations;
//  * no std containers, no <algorithm>, no metrics/library headers — only
//    the POD views from kernels.hpp. A std::vector method instantiated here
//    under -mavx512f and comdat-merged into the baseline build would SIGILL
//    on a non-AVX-512 host;
//  * no FP transformation may depend on the lane count: contraction is off,
//    reductions go through the 16-slot canonical accumulators (kernels.hpp),
//    and every search/walk is per-lane independent. That is what makes each
//    level bitwise-identical to the level-0 scalar oracle.
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "simd/math.hpp"
#include "simd/vec.hpp"
#include "simd/width.hpp"
#include "xsdata/kernels.hpp"

#if !defined(VMC_SIMD_KERNEL_TU) || !defined(VMC_SIMD_LEVEL)
#error "kernels_isa.cpp must be built with -DVMC_SIMD_KERNEL_TU=1 -DVMC_SIMD_LEVEL=<0..3>"
#endif

namespace vmc::xs::kern {

namespace {

constexpr int kF = simd::width_v<float>;
constexpr int kD = simd::width_v<double>;
static_assert(kAccSlots % kF == 0, "slot count must cover the float width");

using VF = simd::Vec<float, kF>;
using VIf = simd::Vec<std::int32_t, kF>;
using VD = simd::Vec<double, kD>;
using VId = simd::Vec<std::int32_t, kD>;
using MId = simd::Mask<std::int32_t, kD>;

/// Accumulator vectors per channel: slot (nuclide mod 16) s lives in
/// acc[s / kF] lane (s mod kF).
constexpr int kAccF = kAccSlots / kF;

inline std::int64_t min64(std::int64_t a, std::int64_t b) {
  return a < b ? a : b;
}

/// hi32 log-energy coordinate (HashGrid::hi32, re-spelled here so this TU
/// needs no class headers).
inline std::int32_t hi32(double e) {
  std::int64_t b;
  std::memcpy(&b, &e, sizeof(b));
  return static_cast<std::int32_t>(b >> 32);
}

/// The canonical reduction: slots 0..15 summed in FLOAT, in slot order.
/// This is exactly the 16-lane hsum of the widest backend, so it is also
/// the law every narrower backend (and the scalar oracle) reproduces. The
/// loop must stay a plain sequential sum — no -ffast-math in this TU, so
/// the compiler cannot re-associate it.
inline float canonical_sum(const VF* acc) {
  float s = 0.0f;
  for (int a = 0; a < kAccF; ++a) {
    for (int l = 0; l < kF; ++l) s += acc[a][l];
  }
  return s;
}

std::uint64_t find_banked_impl(const HashGridView& hg, const double* grid,
                               const double* energies, std::int64_t n,
                               std::int32_t* out_u) {
  std::uint64_t steps = 0;
  for (std::int64_t j = 0; j < n; j += kD) {
    // Masked remainder: dead lanes replicate the last real energy, so they
    // walk/bisect to a valid interval that is simply never stored. The real
    // lanes see exactly the operations of a full tile — bit-identical.
    const int rem = static_cast<int>(min64(kD, n - j));
    const VD ev = rem == kD
                      ? VD::loadu(energies + j)
                      : VD::load_partial(energies + j, rem, energies[n - 1]);
    // Lane buckets: hi32 via a 64-bit shift, then the clamp + reciprocal
    // multiply — identical IEEE operations to the scalar bucket_of, so the
    // lanes land in identical buckets.
    const VId h = (ev.bitcast_int() >> 32).convert<std::int32_t>() - VId(hg.h0);
    const VId hc = simd::min(simd::max(h, VId(0)), VId(hg.span));
    const VId b = (hc.convert<double>() * VD(hg.scale)).convert<std::int32_t>();
    const VId lo = VId::gather(hg.start, b);
    const VId hi = VId::gather(hg.start, b + VId(1));

    VId idx;
    if (hg.linear_walk) {
      // Masked walk with early exit; comparisons in DOUBLE so the interval
      // matches the scalar path bit-for-bit.
      idx = lo;
      for (int w = 0; w < hg.max_bucket_points; ++w) {
        const VD e_next = VD::gather(grid, idx + VId(1));
        const MId need{(e_next <= ev).convert<std::int32_t>().m & (idx < hi).m};
        if (!need.any()) break;
        idx.v -= need.m;  // mask lanes are -1 where true
        steps += static_cast<std::uint64_t>(need.count());
      }
    } else {
      // Fixed-depth masked bisection: every iteration at least halves each
      // lane's window, so bisect_iters = bit_width(max window) suffices.
      VId lov = lo;
      VId hiv = hi;
      for (int it = 0; it < hg.bisect_iters; ++it) {
        const MId cont = lov < hiv;
        if (!cont.any()) break;
        const VId mid = (lov + hiv + VId(1)) >> 1;
        const VD emid = VD::gather(grid, mid);
        const MId le = (emid <= ev).convert<std::int32_t>();
        lov = simd::select(MId{cont.m & le.m}, mid, lov);
        hiv = simd::select(MId{cont.m & ~le.m}, mid - VId(1), hiv);
        steps += static_cast<std::uint64_t>(cont.count());
      }
      idx = lov;
    }
    if (rem == kD) {
      idx.storeu(out_u + j);
    } else {
      idx.store_partial(out_u + j, rem);
    }
  }
  return steps;
}

void xs_banked_impl(const BankedView& v, const double* energies,
                    std::int64_t n, const std::int32_t* us, XsSet* out) {
  const int nn = v.mat.nn;
  for (std::int64_t j = 0; j < n; ++j) {
    const double e = energies[j];
    const std::int32_t* imap_row = nullptr;
    if (us == nullptr) {
      // Tier (b), double-indexed: resolve every nuclide's EXACT interval
      // from the per-bucket per-nuclide starts. Scalar integer/double code,
      // identical on every backend (walks in double precision on the flat
      // grid; the union imap is never read).
      std::int32_t h = hi32(e) - v.hg_h0;
      h = h < 0 ? 0 : (h > v.hg_span ? v.hg_span : h);
      const std::size_t b =
          static_cast<std::size_t>(static_cast<double>(h) * v.hg_scale);
      const std::int32_t* row =
          v.nuclide_start + b * static_cast<std::size_t>(v.nn_total);
      const std::int32_t* row_hi = row + v.nn_total;
      for (int i = 0; i < nn; ++i) {
        const std::int32_t nuc = v.mat.nuclides[i];
        const std::int32_t base = v.fl.offset[nuc];
        const double* ge = v.fl.energy + base;
        std::int32_t idx = row[nuc];
        const std::int32_t hi = row_hi[nuc];
        while (idx < hi && ge[idx + 1] <= e) ++idx;
        v.nidx_scratch[i] = base + idx;
      }
    } else {
      imap_row = v.imap + static_cast<std::size_t>(us[j]) *
                              static_cast<std::size_t>(v.imap_stride);
    }
    const VF ev(static_cast<float>(e));

    VF acc_t[kAccF], acc_s[kAccF], acc_a[kAccF], acc_f[kAccF];
    for (int a = 0; a < kAccF; ++a) {
      acc_t[a] = VF(0.0f);
      acc_s[a] = VF(0.0f);
      acc_a[a] = VF(0.0f);
      acc_f[a] = VF(0.0f);
    }
    for (int nb = 0; nb < nn; nb += kF) {
      // Nuclide block nb feeds canonical slots [nb mod 16, nb mod 16 + kF).
      const int a = (nb / kF) % kAccF;
      // Masked remainder: the last block loads partial lanes with density 0,
      // so dead lanes gather nuclide 0's first interval and contribute
      // exactly nothing (same idiom as the distance stage).
      const int rem = nn - nb;
      const VIf nucid = rem >= kF
                            ? VIf::loadu(v.mat.nuclides + nb)
                            : VIf::load_partial(v.mat.nuclides + nb, rem, 0);
      const VF dens = rem >= kF
                          ? VF::loadu(v.mat.density + nb)
                          : VF::load_partial(v.mat.density + nb, rem, 0.0f);
      VIf idx;
      if (us == nullptr) {
        // Padded staging row: the wrapper zero-fills up to a slot-block
        // boundary, so full-lane loads past nn stay in bounds.
        idx = VIf::loadu(v.nidx_scratch + nb);
      } else {
        const VIf base = VIf::gather(v.fl.offset, nucid);
        idx = VIf::gather(imap_row, nucid) + base;
        // Bounded walk to the exact interval (skipped entirely for an exact
        // union, which also avoids the grid-size gather).
        if (v.walk_bound > 0) {
          const VIf gsz = VIf::gather(v.fl.grid_size, nucid);
          // Highest valid interval start for each lane's nuclide.
          const VIf limit = base + gsz - VIf(2);
          for (int w = 0; w < v.walk_bound; ++w) {
            const VF e_next = VF::gather(v.fl.energy_f, idx + VIf(1));
            const auto need = (e_next <= ev).m & (idx < limit).m;
            idx.v -= need;  // mask lanes are -1 where true
          }
        }
      }
      const VF e_lo = VF::gather(v.fl.energy_f, idx);
      const VF e_hi = VF::gather(v.fl.energy_f, idx + VIf(1));
      VF f = (ev - e_lo) / (e_hi - e_lo);
      f = simd::min(simd::max(f, VF(0.0f)), VF(1.0f));

      const auto channel = [&](const float* xs, VF& acc) {
        const VF lo = VF::gather(xs, idx);
        const VF hi = VF::gather(xs, idx + VIf(1));
        acc = simd::fma(dens, simd::fma(f, hi - lo, lo), acc);
      };
      channel(v.fl.total, acc_t[a]);
      channel(v.fl.scatter, acc_s[a]);
      channel(v.fl.absorption, acc_a[a]);
      channel(v.fl.fission, acc_f[a]);
    }

    out[j] = XsSet{static_cast<double>(canonical_sum(acc_t)),
                   static_cast<double>(canonical_sum(acc_s)),
                   static_cast<double>(canonical_sum(acc_a)),
                   static_cast<double>(canonical_sum(acc_f))};
  }
}

void xs_banked_outer_impl(const BankedView& v, const double* energies,
                          std::int64_t n, const std::int32_t* us, XsSet* out) {
  const int nn = v.mat.nn;
  for (std::int64_t j = 0; j < n; j += kF) {
    // Masked particle remainder: the final tile replicates its last real
    // particle into the dead lanes (valid energies and union rows, so every
    // gather below stays in bounds) and stores only the real lanes back.
    const int rem = static_cast<int>(min64(kF, n - j));
    float ebuf[kF];
    for (int l = 0; l < rem; ++l) {
      ebuf[l] = static_cast<float>(energies[j + l]);
    }
    // Per-lane particle state: energy and union-row offset. Each lane
    // accumulates its own particle serially over the nuclides, so the sum
    // order never depends on the lane count.
    const VF ev = VF::load_partial(ebuf, rem, ebuf[rem - 1]);
    const VIf urow =
        (rem == kF ? VIf::loadu(us + j)
                   : VIf::load_partial(us + j, rem, us[j + rem - 1])) *
        VIf(v.imap_stride);
    VF acc_t(0.0f), acc_s(0.0f), acc_a(0.0f), acc_f(0.0f);
    for (int ni = 0; ni < nn; ++ni) {
      const std::int32_t nucid = v.mat.nuclides[ni];
      const std::int32_t base = v.fl.offset[nucid];
      const std::int32_t gsz = v.fl.grid_size[nucid];
      VIf idx = VIf::gather(v.imap, urow + VIf(nucid)) + VIf(base);
      const VIf limit(base + gsz - 2);
      for (int w = 0; w < v.walk_bound; ++w) {
        const VF e_next = VF::gather(v.fl.energy_f, idx + VIf(1));
        const auto need = (e_next <= ev).m & (idx < limit).m;
        idx.v -= need;
      }
      const VF e_lo = VF::gather(v.fl.energy_f, idx);
      const VF e_hi = VF::gather(v.fl.energy_f, idx + VIf(1));
      VF f = (ev - e_lo) / (e_hi - e_lo);
      f = simd::min(simd::max(f, VF(0.0f)), VF(1.0f));
      const VF dens(v.mat.density[ni]);
      const auto channel = [&](const float* xs, VF& acc) {
        const VF lo = VF::gather(xs, idx);
        const VF hi = VF::gather(xs, idx + VIf(1));
        acc = simd::fma(dens, simd::fma(f, hi - lo, lo), acc);
      };
      channel(v.fl.total, acc_t);
      channel(v.fl.scatter, acc_s);
      channel(v.fl.absorption, acc_a);
      channel(v.fl.fission, acc_f);
    }
    for (int l = 0; l < rem; ++l) {
      out[j + l] = XsSet{static_cast<double>(acc_t[l]),
                         static_cast<double>(acc_s[l]),
                         static_cast<double>(acc_a[l]),
                         static_cast<double>(acc_f[l])};
    }
  }
}

void total_banked_impl(const BankedView& v, const double* energies,
                       std::int64_t n, const std::int32_t* us, double* out) {
  const int nn = v.mat.nn;
  const std::size_t stride = static_cast<std::size_t>(v.imap_stride);
  // Tile P particles against each nuclide block: the kernel is bound by
  // gather latency on the (much larger than cache) grid data, and P
  // independent gather chains give the memory system P times the
  // parallelism. On the in-order MIC the vector unit alone provided this
  // effect; on out-of-order AVX-512 hosts the tiling is what beats the
  // scalar path (measured ~1.5x on H.M. Large; see bench/fig2).
  constexpr int P = 8;
  for (std::int64_t j = 0; j < n; j += P) {
    // Masked particle remainder: dead tile slots replicate the last real
    // particle (valid union rows, in-bounds gathers) and are never stored.
    const int pr = static_cast<int>(min64(P, n - j));
    const std::int32_t* rows[P];
    VF ev[P];
    VF acc[P][kAccF];
    for (int p = 0; p < P; ++p) {
      const std::int64_t jp = j + (p < pr ? p : pr - 1);
      rows[p] = v.imap + static_cast<std::size_t>(us[jp]) * stride;
      ev[p] = VF(static_cast<float>(energies[jp]));
      for (int a = 0; a < kAccF; ++a) acc[p][a] = VF(0.0f);
    }
    for (int nb = 0; nb < nn; nb += kF) {
      const int a = (nb / kF) % kAccF;
      // Masked nuclide remainder: the last block loads partial lanes with
      // density 0, same idiom as xs_banked_impl.
      const int rem = nn - nb;
      const VIf nucid = rem >= kF
                            ? VIf::loadu(v.mat.nuclides + nb)
                            : VIf::load_partial(v.mat.nuclides + nb, rem, 0);
      const VF dens = rem >= kF
                          ? VF::loadu(v.mat.density + nb)
                          : VF::load_partial(v.mat.density + nb, rem, 0.0f);
      const VIf base = VIf::gather(v.fl.offset, nucid);
      VIf idx[P];
      for (int p = 0; p < P; ++p) {
        idx[p] = VIf::gather(rows[p], nucid) + base;
      }
      if (v.walk_bound > 0) {
        const VIf gsz = VIf::gather(v.fl.grid_size, nucid);
        const VIf limit = base + gsz - VIf(2);
        for (int w = 0; w < v.walk_bound; ++w) {
          for (int p = 0; p < P; ++p) {
            const VF e_next = VF::gather(v.fl.energy_f, idx[p] + VIf(1));
            const auto need = (e_next <= ev[p]).m & (idx[p] < limit).m;
            idx[p].v -= need;
          }
        }
      }
      VF e_lo[P], e_hi[P], x_lo[P], x_hi[P];
      for (int p = 0; p < P; ++p) e_lo[p] = VF::gather(v.fl.energy_f, idx[p]);
      for (int p = 0; p < P; ++p) {
        e_hi[p] = VF::gather(v.fl.energy_f, idx[p] + VIf(1));
      }
      for (int p = 0; p < P; ++p) x_lo[p] = VF::gather(v.fl.total, idx[p]);
      for (int p = 0; p < P; ++p) {
        x_hi[p] = VF::gather(v.fl.total, idx[p] + VIf(1));
      }
      for (int p = 0; p < P; ++p) {
        VF f = (ev[p] - e_lo[p]) / (e_hi[p] - e_lo[p]);
        f = simd::min(simd::max(f, VF(0.0f)), VF(1.0f));
        acc[p][a] = simd::fma(dens, simd::fma(f, x_hi[p] - x_lo[p], x_lo[p]),
                              acc[p][a]);
      }
    }
    for (int p = 0; p < pr; ++p) {
      out[j + p] = static_cast<double>(canonical_sum(acc[p]));
    }
  }
}

void distance_impl(const double* xi, const double* sig_total, double* dist,
                   std::int64_t n) {
  for (std::int64_t j = 0; j < n; j += kD) {
    // Masked remainder: dead lanes get xi=0.5 / sigma=1.0 (harmless ahead
    // of the log and the divide) and never reach memory.
    const int rem = static_cast<int>(min64(kD, n - j));
    const VD x = rem == kD ? VD::loadu(xi + j)
                           : VD::load_partial(xi + j, rem, 0.5);
    const VD st = rem == kD ? VD::loadu(sig_total + j)
                            : VD::load_partial(sig_total + j, rem, 1.0);
    const VD d = -simd::vlog(x) / st;
    if (rem == kD) {
      d.storeu(dist + j);
    } else {
      d.store_partial(dist + j, rem);
    }
  }
}

}  // namespace

#define VMC_KERN_STR2(x) #x
#define VMC_KERN_STR(x) VMC_KERN_STR2(x)

const IsaKernels& VMC_SIMD_PP_CAT(kernel_table_, VMC_SIMD_LEVEL)() {
  static constexpr IsaKernels t{
      VMC_SIMD_LEVEL,
      kF,
      kD,
      VMC_SIMD_LEVEL == 0 ? 64 : kF * 32,
      VMC_KERN_STR(VMC_SIMD_ABI),
      &find_banked_impl,
      &xs_banked_impl,
      &xs_banked_outer_impl,
      &total_banked_impl,
      &distance_impl,
  };
  return t;
}

}  // namespace vmc::xs::kern
