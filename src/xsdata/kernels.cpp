// Level -> kernel-table mapping (base TU; the tables themselves come from
// the four per-ISA compilations of kernels_isa.cpp).
#include "xsdata/kernels.hpp"

#include "simd/dispatch.hpp"

namespace vmc::xs::kern {

const IsaKernels& kernel_table(simd::IsaLevel level) {
  switch (level) {
    case simd::IsaLevel::scalar:
      return kernel_table_0();
    case simd::IsaLevel::sse2:
      return kernel_table_1();
    case simd::IsaLevel::avx2:
      return kernel_table_2();
    case simd::IsaLevel::avx512:
      return kernel_table_3();
  }
  return kernel_table_1();  // unreachable: all enumerators handled above
}

const IsaKernels& active_isa_kernels() {
  return kernel_table(simd::dispatch().isa);
}

}  // namespace vmc::xs::kern
