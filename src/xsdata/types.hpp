// Common cross-section value types.
#pragma once

namespace vmc::xs {

/// Macroscopic or microscopic cross-section set for the four reaction
/// channels the transport loop consumes. Units: barns (microscopic) or
/// 1/cm (macroscopic), context-dependent.
struct XsSet {
  double total = 0.0;
  double scatter = 0.0;
  double absorption = 0.0;  // capture + fission
  double fission = 0.0;

  XsSet& operator+=(const XsSet& o) {
    total += o.total;
    scatter += o.scatter;
    absorption += o.absorption;
    fission += o.fission;
    return *this;
  }
  friend XsSet operator*(double a, const XsSet& x) {
    return {a * x.total, a * x.scatter, a * x.absorption, a * x.fission};
  }
};

/// Energy bounds of the continuous-energy data (MeV), matching the
/// conventional ENDF range the paper's Figure 1 spans.
inline constexpr double kEnergyMin = 1.0e-11;  // 1e-5 eV
inline constexpr double kEnergyMax = 20.0;     // 20 MeV

}  // namespace vmc::xs
