#include "xsdata/synth.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rng/stream.hpp"

namespace vmc::xs {

namespace {

constexpr double kThermalE = 2.53e-8;  // 0.0253 eV in MeV

/// One s-wave SLBW resonance.
struct Resonance {
  double e0;       // peak energy (MeV)
  double gamma;    // total width (MeV)
  double sigma0;   // peak cross section (barns)
  double capture_frac;  // Gamma_gamma / Gamma
};

/// SLBW capture/scatter contributions at energy e.
struct ResXs {
  double scatter;
  double absorb;
};

ResXs eval_resonance(const Resonance& r, double e) {
  const double half = 0.5 * r.gamma;
  const double x = (e - r.e0) / half;
  const double lorentz = 1.0 / (1.0 + x * x);
  // sqrt(E0/E) low-energy tail (the 1/v-ish wing of the resonance)
  const double tail = std::sqrt(r.e0 / e);
  const double peak = r.sigma0 * lorentz * tail;
  // Interference term gives the characteristic dip below each scattering
  // resonance (visible in Figure 1's U-238 data).
  const double interference = -2.0 * x * lorentz;
  ResXs out;
  out.absorb = r.capture_frac * peak;
  out.scatter = (1.0 - r.capture_frac) * peak +
                0.15 * r.sigma0 * tail * interference * lorentz;
  return out;
}

}  // namespace

SynthParams SynthParams::u238_like() {
  SynthParams p;
  p.awr = 236.0058;
  p.n_resonances = 400;
  p.res_e_min = 6.67e-6;  // first U-238 resonance at 6.67 eV
  p.res_e_max = 2.0e-2;
  p.sigma_pot = 9.0;
  p.sigma0_mean = 90.0;
  p.gamma_mean = 4.0e-8;
  p.sigma_a_thermal = 2.68;
  p.fission_fraction = 0.0;
  p.fissionable = false;
  p.grid_points = 4000;
  p.with_urr = true;
  return p;
}

SynthParams SynthParams::u235_like() {
  SynthParams p;
  p.awr = 233.0248;
  p.n_resonances = 350;
  p.res_e_min = 2.0e-7;
  p.res_e_max = 2.25e-3;
  p.sigma_pot = 10.0;
  p.sigma0_mean = 400.0;
  p.gamma_mean = 6.0e-8;
  p.sigma_a_thermal = 680.0;
  p.fission_fraction = 0.85;
  p.fissionable = true;
  p.nu = 2.43;
  p.grid_points = 3500;
  p.with_urr = true;
  return p;
}

SynthParams SynthParams::light_like(double awr) {
  SynthParams p;
  p.awr = awr;
  p.n_resonances = 4;
  p.res_e_min = 1.0e-3;
  p.res_e_max = 5.0e-1;
  p.sigma_pot = awr < 2.0 ? 20.0 : 4.0;  // H-1 scatters hard
  p.sigma0_mean = 15.0;
  p.gamma_mean = 1.0e-3;
  p.sigma_a_thermal = awr < 2.0 ? 0.332 : 0.2;
  p.grid_points = 600;
  p.with_urr = false;
  p.with_thermal = awr < 20.0;  // bound light nuclei get S(a,b)
  return p;
}

SynthParams SynthParams::fission_product_like() {
  SynthParams p;
  p.awr = 130.0;
  p.n_resonances = 120;
  p.res_e_min = 1.0e-6;
  p.res_e_max = 5.0e-3;
  p.sigma_pot = 6.0;
  p.sigma0_mean = 150.0;
  p.gamma_mean = 8.0e-8;
  p.sigma_a_thermal = 8.0;
  p.grid_points = 1500;
  p.with_urr = true;
  return p;
}

Nuclide make_synthetic_nuclide(const std::string& name, std::uint64_t seed,
                               const SynthParams& p) {
  rng::Stream rs(seed * 2654435761ULL + 17);

  // --- resonance ladder -------------------------------------------------
  std::vector<Resonance> ladder;
  ladder.reserve(static_cast<std::size_t>(p.n_resonances));
  const double log_lo = std::log(p.res_e_min);
  const double log_hi = std::log(p.res_e_max);
  for (int i = 0; i < p.n_resonances; ++i) {
    Resonance r;
    // Log-uniform spacing with jitter mimics a Wigner-distributed ladder
    // closely enough for access-pattern purposes.
    const double frac =
        (static_cast<double>(i) + 0.2 + 0.6 * rs.next()) / p.n_resonances;
    r.e0 = std::exp(log_lo + frac * (log_hi - log_lo));
    // Width grows ~ sqrt(E0) (neutron width dominance) but stays a small
    // fraction of E0 so far-wing contributions die out physically; without
    // the cap the sqrt(E0/E) tail factor floods the thermal range.
    r.gamma = p.gamma_mean * (0.3 + 1.4 * rs.next()) *
              std::sqrt(r.e0 / p.res_e_min);
    r.gamma = std::min(r.gamma, 5.0e-3 * r.e0);
    r.sigma0 = p.sigma0_mean * (0.2 + 1.6 * rs.next());
    r.capture_frac = 0.4 + 0.5 * rs.next();
    ladder.push_back(r);
  }

  // --- energy grid -------------------------------------------------------
  // Base: log-spaced over the full range; refinement: points clustered
  // through each resonance so the lineshape is resolved (this is what makes
  // real grids 10^4-10^5 points for heavy nuclides).
  std::vector<double> grid;
  const int base_points = std::max(64, p.grid_points / 3);
  const double glo = std::log(kEnergyMin);
  const double ghi = std::log(kEnergyMax);
  for (int i = 0; i <= base_points; ++i) {
    grid.push_back(std::exp(glo + (ghi - glo) * i / base_points));
  }
  const int per_res = std::max(
      4, static_cast<int>((p.grid_points - base_points) /
                          std::max(1, p.n_resonances)));
  for (const auto& r : ladder) {
    for (int k = 0; k < per_res; ++k) {
      // Symmetric fan of offsets in units of the half-width.
      const double u = (static_cast<double>(k) + 0.5) / per_res;
      const double off = std::tan((u - 0.5) * 2.8) * 0.5 * r.gamma * 3.0;
      const double e = r.e0 + off;
      if (e > kEnergyMin && e < kEnergyMax) grid.push_back(e);
    }
    grid.push_back(r.e0);
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  // --- evaluate pointwise xs ---------------------------------------------
  Nuclide n;
  n.name = name;
  n.awr = p.awr;
  n.fissionable = p.fissionable;
  n.nu = p.nu;
  n.energy.assign(grid.begin(), grid.end());
  const std::size_t ng = grid.size();
  n.total.resize(ng);
  n.scatter.resize(ng);
  n.absorption.resize(ng);
  n.fission.resize(ng);

  for (std::size_t i = 0; i < ng; ++i) {
    const double e = grid[i];
    double sc = p.sigma_pot;
    double ab = p.sigma_a_thermal * std::sqrt(kThermalE / e);  // 1/v
    for (const auto& r : ladder) {
      // Resonances farther than ~200 half-widths contribute negligibly and
      // dominate generation cost; skip them.
      if (std::abs(e - r.e0) > 100.0 * r.gamma && std::abs(e - r.e0) > 0.3 * r.e0) {
        continue;
      }
      const ResXs rx = eval_resonance(r, e);
      sc += rx.scatter;
      ab += rx.absorb;
    }
    sc = std::max(sc, 0.1);
    ab = std::max(ab, 1e-6);
    const double fi = p.fissionable ? p.fission_fraction * ab : 0.0;
    n.scatter[i] = static_cast<float>(sc);
    n.absorption[i] = static_cast<float>(ab);
    n.fission[i] = static_cast<float>(fi);
    n.total[i] = static_cast<float>(sc + ab);
  }

  // --- URR probability tables ---------------------------------------------
  if (p.with_urr) {
    UrrTable u;
    u.e_min = p.res_e_max;
    u.e_max = std::min(10.0 * p.res_e_max, 1.0);
    u.n_bands = p.urr_bands;
    const int ne = 12;
    for (int ie = 0; ie < ne; ++ie) {
      u.energy.push_back(u.e_min *
                         std::pow(u.e_max / u.e_min,
                                  static_cast<double>(ie) / (ne - 1)));
    }
    for (int ie = 0; ie < ne; ++ie) {
      double c = 0.0;
      std::vector<double> w(static_cast<std::size_t>(u.n_bands));
      for (auto& x : w) {
        x = 0.2 + rs.next();
        c += x;
      }
      double acc = 0.0;
      for (int b = 0; b < u.n_bands; ++b) {
        acc += w[static_cast<std::size_t>(b)] / c;
        u.cdf.push_back(static_cast<float>(b + 1 == u.n_bands ? 1.0 : acc));
        // Band factors: lognormal-ish around 1 so the expectation stays near
        // the smooth cross section.
        const double f = std::exp(1.2 * (rs.next() - 0.5));
        u.f_total.push_back(static_cast<float>(f));
        u.f_scatter.push_back(static_cast<float>(f * (0.8 + 0.4 * rs.next())));
        u.f_absorption.push_back(
            static_cast<float>(f * (0.8 + 0.4 * rs.next())));
        u.f_fission.push_back(static_cast<float>(
            p.fissionable ? f * (0.8 + 0.4 * rs.next()) : 0.0));
      }
    }
    n.urr = std::move(u);
  }

  // --- thermal S(alpha,beta) ----------------------------------------------
  if (p.with_thermal) {
    ThermalTable t;
    t.cutoff = p.thermal_cutoff;
    const int n_edges = 6;
    double wsum = 0.0;
    for (int k = 0; k < n_edges; ++k) {
      t.bragg_edge.push_back(1.5e-9 * std::pow(2.2, k));
      wsum += 1.0 / (k + 1.0);
      t.bragg_weight.push_back(static_cast<float>(wsum));
    }
    for (auto& w : t.bragg_weight) w /= static_cast<float>(wsum);
    const int ne = 24;
    t.n_out = 8;
    for (int ie = 0; ie < ne; ++ie) {
      const double e = kEnergyMin *
                       std::pow(t.cutoff / kEnergyMin,
                                static_cast<double>(ie) / (ne - 1));
      t.inel_energy.push_back(e);
      t.inel_xs.push_back(static_cast<float>(p.sigma_pot *
                                             (1.0 + 3.0 * std::sqrt(
                                                        kThermalE / e))));
      for (int k = 0; k < t.n_out; ++k) {
        const double frac = (k + 0.5) / t.n_out;
        t.out_energy.push_back(static_cast<float>(
            e * (0.3 + 1.4 * frac) + kThermalE * 0.5 * rs.next()));
        t.out_mu.push_back(static_cast<float>(2.0 * frac - 1.0));
      }
    }
    n.thermal = std::move(t);
  }

  return n;
}

Nuclide make_flat_nuclide(const std::string& name, double sigma_s,
                          double sigma_a, double sigma_f, double nu,
                          double awr) {
  Nuclide n;
  n.name = name;
  n.awr = awr;
  n.fissionable = sigma_f > 0.0;
  n.nu = nu;
  n.energy = {kEnergyMin, 1e-6, 1e-3, 1.0, kEnergyMax};
  const std::size_t ng = n.energy.size();
  n.total.assign(ng, static_cast<float>(sigma_s + sigma_a));
  n.scatter.assign(ng, static_cast<float>(sigma_s));
  n.absorption.assign(ng, static_cast<float>(sigma_a));
  n.fission.assign(ng, static_cast<float>(sigma_f));
  return n;
}

}  // namespace vmc::xs
