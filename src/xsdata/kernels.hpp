// Per-ISA hot-kernel tables: the indirection layer between the public
// lookup/search/distance entry points and the backend implementations that
// are compiled once per ISA level (src/xsdata/kernels_isa.cpp, built four
// times under different -m flags; see src/xsdata/CMakeLists.txt).
//
// Everything in this header is deliberately POD — raw pointers, fixed-width
// integers, function pointers. The per-ISA translation units include it, and
// they must not instantiate std::vector/std::span or any other shared
// template whose code could be comdat-merged across differently-flagged TUs
// (the base wrappers in lookup.cpp / hash_grid.cpp / event.cpp own all
// container handling and flatten it into these views).
//
// Bitwise-identity contract: for identical inputs, every kernel in every
// level's table returns results bit-identical to the level-0 (scalar
// oracle) table. The per-ISA TUs compile with -ffp-contract=off (one
// rounding behaviour everywhere — SSE2 cannot fuse), interval searches and
// walks are per-lane independent, and the banked accumulators use a
// 16-slot canonical reduction (slot = nuclide index mod 16, fixed-order
// final sum) so the grouping of float additions does not depend on the lane
// count. Enforced by tests/property/test_isa_dispatch_fuzz.cpp.
#pragma once

#include <cstdint>

#include "simd/backend.hpp"
#include "xsdata/types.hpp"

namespace vmc::xs::kern {

/// Canonical accumulator slot count for the banked reductions. Every
/// backend folds nuclide term i into slot (i mod 16) and sums the slots in
/// fixed order, so all lane widths (1/4/8/16 floats) produce one result.
/// 16 = the widest backend's float lane count; narrower backends use 16/L
/// accumulator registers.
inline constexpr int kAccSlots = 16;

/// HashGrid::find_banked inputs, flattened (mirrors HashGrid's fields).
struct HashGridView {
  const std::int32_t* start;  ///< bucket window table, n_buckets+1 entries
  std::int32_t h0 = 0;
  std::int32_t span = 0;
  double scale = 0.0;
  std::int32_t max_bucket_points = 0;
  std::int32_t bisect_iters = 0;
  bool linear_walk = false;
};

/// Library::Flat, flattened.
struct FlatView {
  const double* energy;
  const float* energy_f;
  const float* total;
  const float* scatter;
  const float* absorption;
  const float* fission;
  const std::int32_t* offset;
  const std::int32_t* grid_size;
};

/// One material's nuclide list + densities.
struct MaterialView {
  const std::int32_t* nuclides;
  const float* density;
  std::int32_t nn = 0;
};

/// Everything a banked lookup kernel reads. Two grid-search shapes share it:
///  * union path (imap != nullptr): the caller resolved per-particle union
///    intervals into `us` (passed separately) and the kernel walks
///    imap[u*imap_stride + nuclide] to the exact interval;
///  * double-indexed path (hash_nuclide; us == nullptr): the kernel hashes
///    each energy itself and resolves per-nuclide intervals from
///    nuclide_start, using nidx_scratch (caller-owned, padded to a multiple
///    of kAccSlots, tail zero-filled) as the per-particle index staging row.
struct BankedView {
  FlatView fl;
  MaterialView mat;
  // Union-imap path:
  const std::int32_t* imap = nullptr;
  std::int32_t imap_stride = 0;  ///< union n_nuclides
  std::int32_t walk_bound = 0;   ///< union thinning walk bound
  // Double-indexed (hash_nuclide) path:
  const std::int32_t* nuclide_start = nullptr;  ///< [bucket][nn_total]
  std::int32_t nn_total = 0;
  std::int32_t hg_h0 = 0;
  std::int32_t hg_span = 0;
  double hg_scale = 0.0;
  std::int32_t* nidx_scratch = nullptr;
};

/// One ISA level's hot-kernel table. The find/xs/total kernels return or
/// write values that are bitwise identical across levels; walk-step COUNTS
/// (find_banked's return, folded into a metrics counter by the wrapper) are
/// diagnostics and may legitimately differ with the lane count.
struct IsaKernels {
  std::int32_t level;  ///< simd::IsaLevel value this table was compiled for
  std::int32_t lanes_f32;
  std::int32_t lanes_f64;
  std::int32_t simd_bits;
  const char* abi;  ///< ABI namespace tag (diagnostics)

  std::uint64_t (*find_banked)(const HashGridView& hg, const double* grid,
                               const double* energies, std::int64_t n,
                               std::int32_t* out_u);
  void (*xs_banked)(const BankedView& v, const double* energies,
                    std::int64_t n, const std::int32_t* us, XsSet* out);
  void (*xs_banked_outer)(const BankedView& v, const double* energies,
                          std::int64_t n, const std::int32_t* us, XsSet* out);
  void (*total_banked)(const BankedView& v, const double* energies,
                       std::int64_t n, const std::int32_t* us, double* out);
  void (*distance)(const double* xi, const double* sig_total, double* dist,
                   std::int64_t n);
};

// One accessor per level, each defined by one per-ISA TU (the function name
// is pasted from VMC_SIMD_LEVEL in kernels_isa.cpp).
const IsaKernels& kernel_table_0();
const IsaKernels& kernel_table_1();
const IsaKernels& kernel_table_2();
const IsaKernels& kernel_table_3();

/// Table for an explicit level (kernels.cpp).
const IsaKernels& kernel_table(simd::IsaLevel level);

/// Table for the runtime-dispatched level (simd::dispatch()). Looked up per
/// call so force_isa()/VMC_SIMD_ISA switches take effect immediately.
const IsaKernels& active_isa_kernels();

}  // namespace vmc::xs::kern
