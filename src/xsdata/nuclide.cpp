#include "xsdata/nuclide.hpp"

#include <algorithm>
#include <cassert>

namespace vmc::xs {

std::size_t Nuclide::find_index(double e) const {
  assert(energy.size() >= 2);
  if (e <= energy.front()) return 0;
  if (e >= energy.back()) return energy.size() - 2;
  const auto it = std::upper_bound(energy.begin(), energy.end(), e);
  return static_cast<std::size_t>(it - energy.begin()) - 1;
}

XsSet Nuclide::evaluate(double e) const { return evaluate_at(find_index(e), e); }

XsSet Nuclide::evaluate_at(std::size_t i, double e) const {
  const double e0 = energy[i];
  const double e1 = energy[i + 1];
  double f = (e - e0) / (e1 - e0);
  f = std::clamp(f, 0.0, 1.0);
  const auto lerp = [&](const simd::aligned_vector<float>& xs) {
    return static_cast<double>(xs[i]) +
           f * (static_cast<double>(xs[i + 1]) - static_cast<double>(xs[i]));
  };
  return XsSet{lerp(total), lerp(scatter), lerp(absorption), lerp(fission)};
}

std::size_t Nuclide::data_bytes() const {
  std::size_t b = energy.size() * sizeof(double) +
                  (total.size() + scatter.size() + absorption.size() +
                   fission.size()) *
                      sizeof(float);
  if (urr) {
    b += urr->energy.size() * sizeof(double) +
         (urr->cdf.size() + urr->f_total.size() + urr->f_scatter.size() +
          urr->f_absorption.size() + urr->f_fission.size()) *
             sizeof(float);
  }
  if (thermal) {
    b += (thermal->bragg_edge.size() + thermal->inel_energy.size()) *
             sizeof(double) +
         (thermal->bragg_weight.size() + thermal->inel_xs.size() +
          thermal->out_energy.size() + thermal->out_mu.size()) *
             sizeof(float);
  }
  return b;
}

}  // namespace vmc::xs
