// Macroscopic cross-section lookup kernels — the computation the whole paper
// revolves around (Algorithm 1 / Algorithm 2).
//
// Variants:
//  * macro_xs_history  — scalar, one particle at a time, unionized grid.
//    This is what OpenMC's calculate_xs() does per collision in the
//    history-based method.
//  * macro_xs_search   — scalar but per-nuclide binary search instead of the
//    unionized grid (ablation for the [Leppänen 2009] optimization).
//  * macro_xs_banked   — the event-based kernel: a bank of particle energies
//    is swept, one union-grid search per particle, then a SIMD loop over the
//    material's nuclides with gathers into the flattened SoA data. This is
//    the paper's Algorithm 2 with the *inner* (nuclide) loop vectorized —
//    their empirically better choice.
//  * macro_xs_banked_outer — vectorizes the *outer* (particle) loop instead;
//    kept as the ablation the paper reports is slower.
//  * macro_xs_banked_scalar — banked control flow but scalar arithmetic, to
//    separate the banking effect from the SIMD effect.
//  * macro_xs_aos      — scalar lookup against an array-of-structs layout
//    (ablation baseline for the AoS→SoA transform of Section III-A1).
#pragma once

#include <span>

#include "xsdata/library.hpp"

namespace vmc::xs {

// Every kernel takes XsLookupOptions (src/xsdata/hash_grid.hpp) selecting
// the grid-search tier: GridSearch::hash (default — hash-binned bucket +
// bounded walk, batched SIMD search in the banked kernels), ::binary (the
// scalar std::upper_bound ablation baseline), or ::hash_nuclide (the
// double-indexed mode that skips the union imap). hash selects the SAME
// union interval as binary, bit-for-bit, so downstream interpolation and
// tallies are unchanged (tested exhaustively in tests/property/).

/// Scalar history-based lookup via the unionized grid. Double precision.
XsSet macro_xs_history(const Library& lib, int material, double e,
                       const XsLookupOptions& opt = {});

/// Scalar lookup via per-nuclide binary search (no unionized grid).
XsSet macro_xs_search(const Library& lib, int material, double e);

/// Event-based banked lookup, inner nuclide loop vectorized (gathers into
/// the flat SoA arrays). Writes one XsSet per input energy. Arithmetic in
/// single precision (the vector-register economy the paper exploits);
/// relative agreement with macro_xs_history is ~1e-4 (tested). The nuclide
/// remainder is handled with masked load_partial lanes (density 0 in dead
/// lanes), not a scalar tail.
void macro_xs_banked(const Library& lib, int material,
                     std::span<const double> energies, std::span<XsSet> out,
                     const XsLookupOptions& opt = {});

/// Banked lookup with the *outer* particle loop vectorized (lane = particle).
void macro_xs_banked_outer(const Library& lib, int material,
                           std::span<const double> energies,
                           std::span<XsSet> out,
                           const XsLookupOptions& opt = {});

/// Banked control flow, scalar arithmetic (isolates banking vs. SIMD).
void macro_xs_banked_scalar(const Library& lib, int material,
                            std::span<const double> energies,
                            std::span<XsSet> out,
                            const XsLookupOptions& opt = {});

// ---------------------------------------------------------------------------
// Total-only kernels: Algorithm 1 computes just Sigma_t — the quantity the
// free-flight sampling needs and the one the paper's Figure 2 micro-benchmark
// measures. These variants touch a quarter of the cross-section data.
// ---------------------------------------------------------------------------

/// Scalar history-method total cross section via the unionized grid.
double macro_total_history(const Library& lib, int material, double e,
                           const XsLookupOptions& opt = {});

/// Banked SIMD total cross section (inner nuclide loop vectorized).
void macro_total_banked(const Library& lib, int material,
                        std::span<const double> energies,
                        std::span<double> out,
                        const XsLookupOptions& opt = {});

// ---------------------------------------------------------------------------
// AoS layout (ablation)
// ---------------------------------------------------------------------------

/// One grid point with interleaved reaction channels — the "array of Fortran
/// derived types" layout the paper transforms away from.
struct AosPoint {
  double energy;
  float total;
  float scatter;
  float absorption;
  float fission;
};

class AosLibrary {
 public:
  explicit AosLibrary(const Library& lib);
  XsSet evaluate(int nuclide, double e) const;
  int n_nuclides() const { return static_cast<int>(nuclides_.size()); }

 private:
  std::vector<simd::aligned_vector<AosPoint>> nuclides_;
};

/// Scalar lookup against the AoS layout (binary search per nuclide).
XsSet macro_xs_aos(const AosLibrary& aos, const Material& mat, double e);

}  // namespace vmc::xs
