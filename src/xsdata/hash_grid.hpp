// Hash-binned energy-grid accelerator: a log-uniform bucket index over the
// unionized energy grid that replaces the per-particle O(log N) binary
// search with one integer hash plus a short bounded walk [Leppänen-style
// bucketing; the same O(1)-search structure GPU ports of OpenMC-class codes
// use for the memory-bound lookup kernel].
//
// The bucket function needs no log(): for positive IEEE-754 doubles the top
// 32 bits of the bit pattern (`hi32`, sign + exponent + top 20 mantissa
// bits) are an integer that is MONOTONE in the value and piecewise-linear in
// log2(e) — exactly the "log-energy axis". One subtract, one clamp and one
// multiply by a precomputed reciprocal (`scale_ = n_buckets / (span+1)`)
// maps any energy to its bucket. Exact log-uniformity is irrelevant: only
// monotonicity and build/query consistency matter for correctness, and the
// hi32 axis is close enough to log-uniform for even bucket occupancy.
//
// Three tiers share the index:
//  (a) scalar `find()` — bucket -> narrow window [start_[b], start_[b+1]]
//      on the union grid, resolved with a tiny upper_bound. Bit-identical
//      to `UnionGrid::find` (proof in DESIGN.md).
//  (b) the per-nuclide double index `nuclide_row()` — per-bucket start
//      indices into EACH nuclide grid, which skips the union imap entirely
//      (n_buckets x n_nuclides instead of n_union x n_nuclides — the
//      Table II memory/rate tradeoff knob).
//  (c) `find_banked()` — the batched SIMD search: lane buckets via Vec
//      integer math, windows via int32 gathers, interval resolution via a
//      masked walk (sparse buckets) or masked bisection (dense buckets),
//      comparisons in double so the result is bit-identical to (a).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "simd/aligned.hpp"
#include "xsdata/kernels.hpp"
#include "xsdata/nuclide.hpp"

namespace vmc::xs {

/// Which grid-search path the lookup kernels use. The binary path is kept
/// as the ablation baseline; hash is the default everywhere.
enum class GridSearch : std::uint8_t {
  binary,        ///< scalar std::upper_bound on the union grid (baseline)
  hash,          ///< hash bucket -> bounded walk; batched SIMD in banked kernels
  hash_nuclide,  ///< double-indexed: per-bucket per-nuclide starts, no imap
};

/// Options threaded through every lookup kernel (and EventOptions /
/// OffloadRuntime). Defaults give the hash-accelerated path.
struct XsLookupOptions {
  GridSearch search = GridSearch::hash;
};

struct HashGridOptions {
  /// Bucket resolution on the log-energy axis. More bins = narrower search
  /// windows but a larger per-nuclide index (the Table II tradeoff;
  /// EXPERIMENTS.md sweeps this). The effective bucket count is additionally
  /// capped relative to the union size so tiny libraries stay tiny.
  int bins_per_decade = 1024;
  /// Build the per-bucket per-nuclide start table (tier b). Costs
  /// ~(n_buckets+1) * n_nuclides * 4 bytes.
  bool nuclide_index = true;
};

class HashGrid {
 public:
  HashGrid() = default;

  /// Build over `union_energy` (sorted, unique, >= 2 positive points) and,
  /// when opt.nuclide_index, over every nuclide grid as well. Called by
  /// Library::finalize; rebuildable afterwards for bins/decade sweeps.
  void build(std::span<const double> union_energy,
             const std::vector<Nuclide>& nuclides, const HashGridOptions& opt);

  bool empty() const { return n_buckets_ == 0; }
  int n_buckets() const { return n_buckets_; }
  int bins_per_decade() const { return opt_.bins_per_decade; }
  bool has_nuclide_index() const { return !nuclide_start_.empty(); }
  /// Widest bucket window on the union grid (the walk/bisect bound).
  int max_bucket_points() const { return max_bucket_points_; }
  /// Widest per-nuclide bucket window (tier b's walk bound).
  int nuclide_walk_bound() const { return nuclide_walk_bound_; }
  /// Index memory: bucket window table + per-nuclide double index.
  std::size_t bytes() const {
    return (start_.size() + nuclide_start_.size()) * sizeof(std::int32_t);
  }

  /// Bucket of `e`, clamped into [0, n_buckets-1]. Monotone in e.
  int bucket_of(double e) const {
    std::int32_t h = hi32(e) - h0_;
    h = h < 0 ? 0 : (h > span_ ? span_ : h);
    // h < 2^26, so the double product is exact-until-rounding and the same
    // scalar multiply/truncate the SIMD path performs lane-wise.
    return static_cast<int>(static_cast<double>(h) * scale_);
  }

  /// Tier (a): interval index on `grid` (the union grid this index was built
  /// over). Bit-identical to Library::UnionGrid::find.
  std::size_t find(std::span<const double> grid, double e) const;

  /// Tier (c): batched search; out_u[i] == find(grid, energies[i]) for all
  /// i, resolved kD lanes at a time with masked gathers. Bumps the
  /// vmc_xs_grid_search_walks_total counter with the walk/bisect steps taken.
  void find_banked(std::span<const double> grid,
                   std::span<const double> energies, std::int32_t* out_u) const;

  /// Tier (b): row of per-nuclide start indices for `bucket` (valid inputs
  /// 0..n_buckets). Row b and row b+1 bracket the bounded walk on each
  /// nuclide grid; the walk result is that nuclide's EXACT interval (no
  /// union imap involved).
  const std::int32_t* nuclide_row(int bucket) const {
    return nuclide_start_.data() +
           static_cast<std::size_t>(bucket) * static_cast<std::size_t>(nn_);
  }

  /// POD view over the bucket index, handed to the per-ISA kernel tables
  /// (kern::IsaKernels::find_banked and the double-indexed lookup path).
  kern::HashGridView view() const {
    return kern::HashGridView{start_.data(),       h0_,           span_,
                              scale_,              max_bucket_points_,
                              bisect_iters_,       linear_walk_};
  }

  /// Top 32 bits of the IEEE-754 pattern: the log-energy axis coordinate.
  static std::int32_t hi32(double e) {
    std::int64_t b;
    std::memcpy(&b, &e, sizeof(b));
    return static_cast<std::int32_t>(b >> 32);
  }

 private:
  std::size_t resolve(std::span<const double> grid, double e,
                      std::uint64_t& steps) const;

  HashGridOptions opt_;
  std::int32_t h0_ = 0;   // hi32(grid.front())
  std::int32_t span_ = 0; // hi32(grid.back()) - h0_, >= 0
  double scale_ = 0.0;    // n_buckets / (span + 1): the reciprocal
  int n_buckets_ = 0;
  int nn_ = 0;
  int max_bucket_points_ = 0;
  int nuclide_walk_bound_ = 0;
  int bisect_iters_ = 0;   // fixed SIMD bisection depth: bit_width(max window)
  bool linear_walk_ = false;  // sparse buckets: masked walk beats bisection
  /// start_[b] = clamp(first union point with bucket >= b, minus 1) — the
  /// window [start_[b], start_[b+1]] contains find(e) for every e in bucket
  /// b. Size n_buckets+1 (sentinel row keeps the windows branch-free).
  simd::aligned_vector<std::int32_t> start_;
  /// nuclide_start_[b * n_nuclides + n]: same construction per nuclide grid.
  simd::aligned_vector<std::int32_t> nuclide_start_;
};

}  // namespace vmc::xs
