// Synthetic continuous-energy nuclide generator.
//
// SUBSTITUTION (see DESIGN.md §2): the paper reads evaluated ENDF/B data via
// OpenMC's HDF5 library; that data is not redistributable here, so we
// synthesize nuclides with the same *computational* character: single-level
// Breit-Wigner resonance ladders over a resolved range, 1/v absorption at
// thermal energies, a potential-scattering floor, an unresolved-resonance
// probability-table range, and optional thermal S(alpha,beta) tables. Grid
// sizes, resonance densities, and data volumes are parameterized so the
// H.M. Small (34-nuclide) and Large (320-nuclide) libraries reproduce the
// lookup access pattern the paper benchmarks.
#pragma once

#include <cstdint>
#include <string>

#include "xsdata/nuclide.hpp"

namespace vmc::xs {

/// Tuning knobs for a synthetic nuclide. The defaults describe a generic
/// heavy absorber; `u238_like()` / `light_like()` / `fission_product_like()`
/// give the three archetypes the H.M. material builders draw from.
struct SynthParams {
  double awr = 236.0;            // atomic weight ratio
  int n_resonances = 300;        // resolved resonances
  double res_e_min = 5.0e-6;     // resolved range lower bound (MeV)
  double res_e_max = 1.0e-2;     // resolved range upper bound (MeV)
  double sigma_pot = 9.0;        // potential scattering (barns)
  double sigma0_mean = 200.0;    // mean resonance peak height (barns)
  double gamma_mean = 3.0e-8;    // mean total resonance width (MeV)
  double sigma_a_thermal = 2.7;  // absorption at 0.0253 eV (barns), 1/v
  double fission_fraction = 0.0; // fraction of resonance absorption that fissions
  bool fissionable = false;
  double nu = 2.43;
  int grid_points = 2000;        // target pointwise grid size
  bool with_urr = true;          // unresolved range above res_e_max
  int urr_bands = 8;
  bool with_thermal = false;     // S(alpha,beta) below 4 eV
  double thermal_cutoff = 4.0e-6;

  static SynthParams u238_like();
  static SynthParams u235_like();
  static SynthParams light_like(double awr);
  static SynthParams fission_product_like();
};

/// Build a synthetic nuclide. `seed` individualizes the resonance ladder so
/// every nuclide in a 320-nuclide library has distinct data (distinct gather
/// targets — important for the memory-bound lookup benchmark).
Nuclide make_synthetic_nuclide(const std::string& name, std::uint64_t seed,
                               const SynthParams& p);

/// Energy-independent ("one-group") nuclide: constant cross sections over
/// the whole energy range. In an infinite reflective medium of such a
/// nuclide every analog history ends in absorption, so
/// k_inf = nu * sigma_f / sigma_a exactly — the analytic anchor the
/// transport validation tests use.
Nuclide make_flat_nuclide(const std::string& name, double sigma_s,
                          double sigma_a, double sigma_f, double nu,
                          double awr = 235.0);

}  // namespace vmc::xs
