#include "xsdata/hash_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"
#include "simd/simd.hpp"

namespace vmc::xs {

namespace {

/// Bucket windows narrower than this resolve faster with the masked linear
/// walk (early exit, ~1 gather per step) than with fixed-depth bisection.
constexpr int kLinearWalkMax = 8;

obs::Counter& walk_counter() {
  // Shared handle; inc() is one relaxed atomic add, bumped once per batch.
  static obs::Counter c = obs::metrics().counter(
      "vmc_xs_grid_search_walks_total", {},
      "Walk/bisect steps taken by hash-grid energy interval searches");
  return c;
}

}  // namespace

void HashGrid::build(std::span<const double> union_energy,
                     const std::vector<Nuclide>& nuclides,
                     const HashGridOptions& opt) {
  assert(union_energy.size() >= 2);
  assert(union_energy.front() > 0.0);
  opt_ = opt;
  const std::size_t nu = union_energy.size();
  h0_ = hi32(union_energy.front());
  span_ = hi32(union_energy.back()) - h0_;
  assert(span_ >= 0);

  // Bucket count from the requested bins/decade, capped both absolutely and
  // relative to the union size (a 2-point test grid does not need 12k
  // buckets; a production union is orders of magnitude larger than either
  // cap). Any count >= 1 is correct — caps only trade window width.
  const double decades =
      std::log10(union_energy.back() / union_energy.front());
  std::int64_t nb = static_cast<std::int64_t>(
      std::ceil(std::max(decades, 1e-3) * opt.bins_per_decade));
  nb = std::clamp<std::int64_t>(nb, 1, 1 << 20);
  nb = std::min<std::int64_t>(nb, 16 * static_cast<std::int64_t>(nu) + 1024);
  n_buckets_ = static_cast<int>(nb);
  scale_ = static_cast<double>(n_buckets_) /
           (static_cast<double>(span_) + 1.0);

  // start_[b] = clamp(first_in[b] - 1, 0, nu-2) where first_in[b] is the
  // first union point whose bucket is >= b. For any e with bucket b,
  // UnionGrid::find(e) lies in [start_[b], start_[b+1]] (monotonicity of
  // bucket_of; see DESIGN.md for the clamp cases).
  start_.resize(static_cast<std::size_t>(n_buckets_) + 1);
  {
    std::size_t iu = 0;
    for (int b = 0; b <= n_buckets_; ++b) {
      while (iu < nu && bucket_of(union_energy[iu]) < b) ++iu;
      const std::int64_t s = static_cast<std::int64_t>(iu) - 1;
      start_[static_cast<std::size_t>(b)] = static_cast<std::int32_t>(
          std::clamp<std::int64_t>(s, 0, static_cast<std::int64_t>(nu) - 2));
    }
  }
  max_bucket_points_ = 0;
  for (int b = 0; b < n_buckets_; ++b) {
    max_bucket_points_ =
        std::max(max_bucket_points_,
                 start_[static_cast<std::size_t>(b) + 1] -
                     start_[static_cast<std::size_t>(b)]);
  }
  bisect_iters_ = 0;
  for (int w = max_bucket_points_; w > 0; w >>= 1) ++bisect_iters_;
  linear_walk_ = max_bucket_points_ <= kLinearWalkMax;

  // Tier (b): the same construction against every nuclide grid. Row b and
  // row b+1 bracket a bounded walk whose result is the nuclide's EXACT
  // interval — the n_union x n_nuclides imap is never touched.
  nuclide_start_.clear();
  nuclide_walk_bound_ = 0;
  nn_ = static_cast<int>(nuclides.size());
  if (opt.nuclide_index && nn_ > 0) {
    const std::size_t rows = static_cast<std::size_t>(n_buckets_) + 1;
    nuclide_start_.resize(rows * static_cast<std::size_t>(nn_));
    for (int n = 0; n < nn_; ++n) {
      const auto& grid = nuclides[static_cast<std::size_t>(n)].energy;
      const std::int64_t last =
          static_cast<std::int64_t>(grid.size()) - 2;
      std::size_t ig = 0;
      std::int32_t prev = 0;
      for (int b = 0; b <= n_buckets_; ++b) {
        while (ig < grid.size() && bucket_of(grid[ig]) < b) ++ig;
        const std::int32_t s = static_cast<std::int32_t>(std::clamp<std::int64_t>(
            static_cast<std::int64_t>(ig) - 1, 0, last));
        nuclide_start_[static_cast<std::size_t>(b) *
                           static_cast<std::size_t>(nn_) +
                       static_cast<std::size_t>(n)] = s;
        if (b > 0) nuclide_walk_bound_ = std::max(nuclide_walk_bound_, s - prev);
        prev = s;
      }
    }
  }
}

std::size_t HashGrid::resolve(std::span<const double> grid, double e,
                              std::uint64_t& steps) const {
  const int b = bucket_of(e);
  const std::size_t lo = static_cast<std::size_t>(start_[static_cast<std::size_t>(b)]);
  const std::size_t hi =
      static_cast<std::size_t>(start_[static_cast<std::size_t>(b) + 1]);
  if (linear_walk_) {
    std::size_t idx = lo;
    while (idx < hi && grid[idx + 1] <= e) {
      ++idx;
      ++steps;
    }
    return idx;
  }
  // Narrow upper_bound over (lo, hi]: first point > e, minus one — the same
  // answer UnionGrid::find computes over the whole grid.
  const double* first = grid.data() + lo + 1;
  const double* last = grid.data() + hi + 1;
  const double* it = std::upper_bound(first, last, e);
  steps += static_cast<std::uint64_t>(bisect_iters_);
  return static_cast<std::size_t>(it - grid.data()) - 1;
}

std::size_t HashGrid::find(std::span<const double> grid, double e) const {
  std::uint64_t steps = 0;
  return resolve(grid, e, steps);
}

void HashGrid::find_banked(std::span<const double> grid,
                           std::span<const double> energies,
                           std::int32_t* out_u) const {
  // The search body lives in the per-ISA kernel tables (kernels_isa.cpp);
  // this wrapper flattens the index into a POD view, routes through the
  // runtime-dispatched backend and keeps the metrics bump in a base TU.
  const std::uint64_t steps = kern::active_isa_kernels().find_banked(
      view(), grid.data(), energies.data(),
      static_cast<std::int64_t>(energies.size()), out_u);
  if (steps != 0) walk_counter().inc(steps);
}

}  // namespace vmc::xs
