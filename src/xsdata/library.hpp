// Nuclide library: owns all nuclides + materials, the flattened SoA copy of
// the pointwise data, and the unionized energy grid [Leppänen 2009].
//
// Layouts:
//  * Per-nuclide AoS-of-grids (`Nuclide`) — what physics code reads.
//  * Flattened SoA (`Flat`) — every nuclide's grid concatenated per reaction
//    channel with per-nuclide offsets. This is the paper's "arrays of Fortran
//    derived types into single isolated arrays" (AoS→SoA) transform, the
//    single most important MIC optimization in Section III-A1, and the layout
//    the banked SIMD lookup kernel gathers from.
//  * Unionized grid (`UnionGrid`) — a single sorted union of all nuclide
//    grids plus an index map imap[u * n_nuclides + n] giving, for union point
//    u, the interval of nuclide n containing it. One binary search per
//    particle replaces one per (particle, nuclide). The map is stored
//    u-major so the inner loop over nuclides reads it contiguously — this is
//    what lets the inner nuclide loop vectorize (Algorithm 2, line 11).
#pragma once

#include <cstdint>
#include <vector>

#include "simd/aligned.hpp"
#include "xsdata/hash_grid.hpp"
#include "xsdata/material.hpp"
#include "xsdata/nuclide.hpp"

namespace vmc::xs {

class Library {
 public:
  /// Optional cap on union grid size; when the exact union exceeds it the
  /// grid is thinned and lookups do a short bounded walk to the exact
  /// interval (Leppänen's approximate variant). 0 = exact union always.
  explicit Library(std::size_t max_union_points = 1u << 20);

  int add_nuclide(Nuclide n);
  int add_material(Material m);

  /// Build the flat SoA arrays and the unionized grid. Must be called after
  /// all nuclides/materials are added and before any lookup.
  void finalize();
  bool finalized() const { return finalized_; }

  int n_nuclides() const { return static_cast<int>(nuclides_.size()); }
  int n_materials() const { return static_cast<int>(materials_.size()); }
  const Nuclide& nuclide(int i) const {
    return nuclides_[static_cast<std::size_t>(i)];
  }
  const Material& material(int i) const {
    return materials_[static_cast<std::size_t>(i)];
  }

  // --- flattened SoA -----------------------------------------------------
  struct Flat {
    simd::aligned_vector<double> energy;   // concatenated grids
    simd::aligned_vector<float> energy_f;  // float copy for the SIMD kernel
    simd::aligned_vector<float> total;
    simd::aligned_vector<float> scatter;
    simd::aligned_vector<float> absorption;
    simd::aligned_vector<float> fission;
    simd::aligned_vector<std::int32_t> offset;     // per-nuclide start
    simd::aligned_vector<std::int32_t> grid_size;  // per-nuclide grid length
  };
  const Flat& flat() const { return flat_; }

  // --- unionized grid ------------------------------------------------------
  struct UnionGrid {
    simd::aligned_vector<double> energy;  // union grid (maybe thinned)
    simd::aligned_vector<std::int32_t> imap;  // [u * n_nuclides + n]
    int n_nuclides = 0;
    /// Max nuclide grid points inside one union interval; the bounded-walk
    /// length lookups must perform. 0 for an exact union.
    int walk_bound = 0;

    /// Interval index u with energy[u] <= e < energy[u+1], clamped.
    std::size_t find(double e) const;
    std::size_t size() const { return energy.size(); }
  };
  const UnionGrid& union_grid() const { return union_; }

  // --- hash-binned accelerator --------------------------------------------
  /// Log-uniform bucket index built by finalize() over the union grid (and,
  /// by default, every nuclide grid — the double-indexed tier). Queries take
  /// the union energy span explicitly, so the index holds no pointers into
  /// this Library and copies/moves stay trivially safe.
  const HashGrid& hash_grid() const { return hash_; }
  /// Configure the index before finalize() (bins/decade, tier-b on/off).
  void set_hash_options(const HashGridOptions& opt);
  /// Rebuild the index after finalize() — the bins/decade sweep hook used by
  /// bench/fig1 and the property tests. Lookup results are unchanged by
  /// construction; only window widths and index memory move.
  void rebuild_hash(const HashGridOptions& opt);

  /// Bytes in the unionized grid + index map (Table II's "energy grid size
  /// transferred"), in all pointwise data, and in the hash-binned index.
  std::size_t union_bytes() const;
  std::size_t pointwise_bytes() const;
  std::size_t hash_bytes() const { return hash_.bytes(); }

 private:
  std::size_t max_union_points_;
  bool finalized_ = false;
  std::vector<Nuclide> nuclides_;
  std::vector<Material> materials_;
  Flat flat_;
  UnionGrid union_;
  HashGridOptions hash_options_;
  HashGrid hash_;
};

}  // namespace vmc::xs
