#include "xsdata/library.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace vmc::xs {

Library::Library(std::size_t max_union_points)
    : max_union_points_(max_union_points) {}

int Library::add_nuclide(Nuclide n) {
  if (finalized_) throw std::logic_error("Library already finalized");
  if (n.energy.size() < 2) throw std::invalid_argument("nuclide grid too small");
  nuclides_.push_back(std::move(n));
  return static_cast<int>(nuclides_.size()) - 1;
}

int Library::add_material(Material m) {
  if (finalized_) throw std::logic_error("Library already finalized");
  for (auto id : m.nuclides) {
    if (id < 0 || id >= static_cast<std::int32_t>(nuclides_.size())) {
      throw std::out_of_range("material references unknown nuclide");
    }
  }
  materials_.push_back(std::move(m));
  return static_cast<int>(materials_.size()) - 1;
}

void Library::finalize() {
  if (finalized_) return;
  if (nuclides_.empty()) throw std::logic_error("empty library");

  // ---- flatten ----------------------------------------------------------
  std::size_t total_pts = 0;
  for (const auto& n : nuclides_) total_pts += n.grid_size();
  if (total_pts > static_cast<std::size_t>(INT32_MAX)) {
    throw std::length_error("flattened grid exceeds int32 indexing");
  }
  flat_.energy.reserve(total_pts);
  flat_.energy_f.reserve(total_pts);
  flat_.total.reserve(total_pts);
  flat_.scatter.reserve(total_pts);
  flat_.absorption.reserve(total_pts);
  flat_.fission.reserve(total_pts);
  for (const auto& n : nuclides_) {
    flat_.offset.push_back(static_cast<std::int32_t>(flat_.energy.size()));
    flat_.grid_size.push_back(static_cast<std::int32_t>(n.grid_size()));
    flat_.energy.insert(flat_.energy.end(), n.energy.begin(), n.energy.end());
    for (double e : n.energy) flat_.energy_f.push_back(static_cast<float>(e));
    flat_.total.insert(flat_.total.end(), n.total.begin(), n.total.end());
    flat_.scatter.insert(flat_.scatter.end(), n.scatter.begin(),
                         n.scatter.end());
    flat_.absorption.insert(flat_.absorption.end(), n.absorption.begin(),
                            n.absorption.end());
    flat_.fission.insert(flat_.fission.end(), n.fission.begin(),
                         n.fission.end());
  }

  // ---- union grid ---------------------------------------------------------
  std::vector<double> u;
  u.reserve(total_pts);
  for (const auto& n : nuclides_) {
    u.insert(u.end(), n.energy.begin(), n.energy.end());
  }
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());

  if (max_union_points_ != 0 && u.size() > max_union_points_) {
    // Thin: keep every k-th point plus the end points (Leppänen's
    // approximate union). Lookups recover exactness via a bounded walk.
    const std::size_t k = (u.size() + max_union_points_ - 1) / max_union_points_;
    std::vector<double> thin;
    thin.reserve(u.size() / k + 2);
    for (std::size_t i = 0; i < u.size(); i += k) thin.push_back(u[i]);
    if (thin.back() != u.back()) thin.push_back(u.back());
    u = std::move(thin);
  }

  union_.energy.assign(u.begin(), u.end());
  union_.n_nuclides = n_nuclides();
  const std::size_t nu = union_.energy.size();
  const std::size_t nn = nuclides_.size();
  union_.imap.resize(nu * nn);

  int walk_bound = 0;
  for (std::size_t n = 0; n < nn; ++n) {
    const auto& grid = nuclides_[n].energy;
    // Merge-walk the union grid against nuclide n's grid: idx = last nuclide
    // point <= union point (clamped to a valid interval).
    std::size_t idx = 0;
    for (std::size_t iu = 0; iu < nu; ++iu) {
      const double e = union_.energy[iu];
      int strict_steps = 0;
      while (idx + 2 < grid.size() && grid[idx + 1] <= e) {
        // Steps landing exactly on the union point define imap[iu] and need
        // no lookup-time walk; only points STRICTLY inside the previous
        // union interval force a walk.
        if (grid[idx + 1] < e) ++strict_steps;
        ++idx;
      }
      walk_bound = std::max(walk_bound, strict_steps);
      union_.imap[iu * nn + n] = static_cast<std::int32_t>(idx);
    }
  }
  // walk_bound is the max number of nuclide grid points strictly inside one
  // union interval: 0 for an exact union, > 0 only when thinned.
  union_.walk_bound = walk_bound;

  // ---- hash-binned accelerator -------------------------------------------
  hash_.build(union_.energy, nuclides_, hash_options_);

  finalized_ = true;
}

void Library::set_hash_options(const HashGridOptions& opt) {
  if (finalized_) throw std::logic_error("Library already finalized");
  hash_options_ = opt;
}

void Library::rebuild_hash(const HashGridOptions& opt) {
  if (!finalized_) throw std::logic_error("Library not finalized");
  hash_options_ = opt;
  hash_.build(union_.energy, nuclides_, opt);
}

std::size_t Library::UnionGrid::find(double e) const {
  if (e <= energy.front()) return 0;
  if (e >= energy.back()) return energy.size() - 2;
  const auto it = std::upper_bound(energy.begin(), energy.end(), e);
  return static_cast<std::size_t>(it - energy.begin()) - 1;
}

std::size_t Library::union_bytes() const {
  return union_.energy.size() * sizeof(double) +
         union_.imap.size() * sizeof(std::int32_t);
}

std::size_t Library::pointwise_bytes() const {
  std::size_t b = 0;
  for (const auto& n : nuclides_) b += n.data_bytes();
  return b;
}

}  // namespace vmc::xs
