// Continuous-energy nuclide data: pointwise cross sections plus the two
// physics treatments the paper singles out as vectorization-hostile — the
// unresolved-resonance-range (URR) probability tables [Levitt 1972] and the
// S(alpha,beta) thermal scattering tables. Both are deliberately branchy,
// exactly the property that forces the banking method to strip them
// (Section III-A1) and full-physics mode to keep them (Section III-B).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "simd/aligned.hpp"
#include "xsdata/types.hpp"

namespace vmc::xs {

/// Unresolved-resonance-range probability table. At an incident energy in
/// [e_min, e_max] the cross section is not a deterministic value: a band is
/// sampled from a per-energy CDF and per-band multiplicative factors are
/// applied to the smooth cross sections. The CDF walk is the conditional
/// cascade the paper calls out.
struct UrrTable {
  double e_min = 0.0;
  double e_max = 0.0;
  int n_bands = 0;
  std::vector<double> energy;      // incident grid, ascending
  std::vector<float> cdf;          // [ie * n_bands + b], last band = 1
  std::vector<float> f_total;     // multiplicative factors per [ie, b]
  std::vector<float> f_scatter;
  std::vector<float> f_absorption;
  std::vector<float> f_fission;

  bool contains(double e) const { return e >= e_min && e < e_max; }
};

/// Simplified S(alpha,beta) thermal-scattering table: coherent-elastic Bragg
/// edges (loop-with-break structure) plus an incoherent-inelastic table of
/// discrete outgoing (energy, mu) lines — enough branch structure to stand in
/// for the full ENDF treatment when studying vectorizability.
struct ThermalTable {
  double cutoff = 0.0;                 // apply below this energy (MeV)
  std::vector<double> bragg_edge;      // ascending edge energies
  std::vector<float> bragg_weight;     // cumulative structure factors
  std::vector<double> inel_energy;     // incident grid
  std::vector<float> inel_xs;          // inelastic xs at each grid point
  int n_out = 0;                       // outgoing lines per incident point
  std::vector<float> out_energy;       // [ie * n_out + k]
  std::vector<float> out_mu;           // [ie * n_out + k]

  bool contains(double e) const { return e < cutoff && !inel_energy.empty(); }
};

/// One nuclide's continuous-energy data on its own (SoA) energy grid.
struct Nuclide {
  std::string name;
  double awr = 1.0;  // atomic weight ratio (target mass / neutron mass)
  bool fissionable = false;
  double nu = 2.43;  // mean fission neutron yield (energy-independent model)

  simd::aligned_vector<double> energy;  // ascending grid (MeV)
  simd::aligned_vector<float> total;
  simd::aligned_vector<float> scatter;
  simd::aligned_vector<float> absorption;
  simd::aligned_vector<float> fission;

  std::optional<UrrTable> urr;
  std::optional<ThermalTable> thermal;

  std::size_t grid_size() const { return energy.size(); }

  /// Index i of the interval with energy[i] <= e < energy[i+1], clamped to
  /// [0, grid_size()-2]. Binary search.
  std::size_t find_index(double e) const;

  /// Lin-lin interpolated cross sections at energy e (no URR/S(a,b)).
  XsSet evaluate(double e) const;

  /// Interpolate inside a known interval (from find_index or a unionized
  /// grid map).
  XsSet evaluate_at(std::size_t i, double e) const;

  /// Bytes of pointwise data (for the Table II transfer-size accounting).
  std::size_t data_bytes() const;
};

}  // namespace vmc::xs
