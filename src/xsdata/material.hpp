// Material composition: a list of nuclides with atom densities.
#pragma once

#include <cstdint>
#include <string>

#include "simd/aligned.hpp"

namespace vmc::xs {

/// A homogeneous material. `nuclides[i]` is a library nuclide id and
/// `density[i]` its atom density in atoms/(barn·cm), so macroscopic
/// Sigma = sum_i density[i] * sigma_i(E) comes out in 1/cm — exactly
/// Algorithm 1 of the paper. The arrays are SoA and 64-byte aligned because
/// the banked lookup kernel streams them with vector loads.
struct Material {
  std::string name;
  simd::aligned_vector<std::int32_t> nuclides;
  simd::aligned_vector<float> density;

  void add(std::int32_t nuclide_id, double atom_density) {
    nuclides.push_back(nuclide_id);
    density.push_back(static_cast<float>(atom_density));
  }

  std::size_t size() const { return nuclides.size(); }
};

}  // namespace vmc::xs
