# Sanitizer wiring for VectorMC.
#
# Usage: -DVMC_SANITIZE=<spec>, where <spec> is a semicolon- or comma-
# separated list of sanitizers to enable on every target that links
# `vmc_options`. Supported specs:
#
#   address;undefined   ASan + UBSan (the default correctness build)
#   thread              TSan (the race-detection harness preset)
#   memory              MSan (clang only; rejected on GCC with a clear error)
#   leak                standalone LeakSanitizer
#
# Mutually incompatible combinations (thread with address/leak/memory) are
# rejected at configure time rather than left to a cryptic link failure.
#
# The module defines one function, `vmc_enable_sanitizers(<target>)`, applied
# to the shared `vmc_options` interface target so the whole tree — library
# code, tests, benches, tools — is built with consistent instrumentation.

include_guard(GLOBAL)
include(CheckCXXSourceCompiles)

set(VMC_SANITIZE "" CACHE STRING
    "Semicolon/comma-separated sanitizers: address;undefined | thread | memory | leak")

# `flag_list` is a ;-list: CMAKE_REQUIRED_FLAGS wants one space-separated
# string, CMAKE_REQUIRED_LINK_OPTIONS wants the list itself.
function(_vmc_check_sanitizer_supported flag_list out_var)
  string(REPLACE ";" " " _space_flags "${flag_list}")
  set(CMAKE_REQUIRED_FLAGS "${_space_flags}")
  set(CMAKE_REQUIRED_LINK_OPTIONS ${flag_list})
  check_cxx_source_compiles("int main() { return 0; }" ${out_var})
endfunction()

function(vmc_enable_sanitizers target)
  if(NOT VMC_SANITIZE)
    return()
  endif()

  # Accept either "address,undefined" or "address;undefined".
  string(REPLACE "," ";" _sans "${VMC_SANITIZE}")
  list(REMOVE_DUPLICATES _sans)

  set(_known address undefined thread memory leak)
  foreach(_s IN LISTS _sans)
    if(NOT _s IN_LIST _known)
      message(FATAL_ERROR "VMC_SANITIZE: unknown sanitizer '${_s}' "
                          "(expected one of: ${_known})")
    endif()
  endforeach()

  if("thread" IN_LIST _sans)
    foreach(_bad address leak memory)
      if(_bad IN_LIST _sans)
        message(FATAL_ERROR
            "VMC_SANITIZE: 'thread' cannot be combined with '${_bad}'")
      endif()
    endforeach()
  endif()
  if("memory" IN_LIST _sans AND NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
        "VMC_SANITIZE=memory requires Clang; ${CMAKE_CXX_COMPILER_ID} has no "
        "MemorySanitizer. Use -DCMAKE_CXX_COMPILER=clang++ or pick "
        "address;undefined / thread instead.")
  endif()

  string(JOIN "," _joined ${_sans})
  set(_flags "-fsanitize=${_joined}" "-fno-omit-frame-pointer")
  string(MAKE_C_IDENTIFIER "${_joined}" _id)
  _vmc_check_sanitizer_supported("${_flags}" VMC_SANITIZER_SUPPORTED_${_id})
  if(NOT VMC_SANITIZER_SUPPORTED_${_id})
    message(FATAL_ERROR
        "VMC_SANITIZE=${VMC_SANITIZE}: compiler/linker rejected "
        "'-fsanitize=${_joined}'")
  endif()

  message(STATUS "VectorMC sanitizers enabled: ${_joined}")
  target_compile_options(${target} INTERFACE ${_flags})
  target_link_options(${target} INTERFACE ${_flags})
  # UBSan: make every report fatal so CTest fails instead of scrolling past.
  if("undefined" IN_LIST _sans)
    target_compile_options(${target} INTERFACE -fno-sanitize-recover=all)
    target_link_options(${target} INTERFACE -fno-sanitize-recover=all)
  endif()
  target_compile_definitions(${target} INTERFACE VMC_SANITIZED=1)
  if("thread" IN_LIST _sans)
    target_compile_definitions(${target} INTERFACE VMC_TSAN=1)
  endif()
endfunction()
